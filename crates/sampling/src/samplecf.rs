//! SampleCF: the sampling-based compression-fraction estimator (§2.2, \[11\]).
//!
//! `SampleCF(I, f)` builds index `I` on a fraction-`f` sample of its table
//! (or on the filtered sample / MV sample for partial and MV indexes),
//! compresses it with the index's method, and returns
//! `compressed_size / uncompressed_size`. The build on the sample is the
//! expensive part — its cost (uncompressed data pages indexed, per the
//! paper's cost unit in §5.1) is reported alongside the estimate.

use crate::index_rows::{index_row_stream_spread, mv_index_row_stream};
use crate::manager::SampleManager;
use crate::mv_sample::create_mv_sample;
use cadb_common::obs;
use cadb_common::par::{try_par_map, Parallelism};
use cadb_common::{Result, TableId};
use cadb_compression::analyze::{compressed_index_size, CompressionMeasurement, PAGE_PAYLOAD};
use cadb_compression::CompressionKind;
use cadb_engine::{IndexSpec, JoinEdge, Predicate};

/// Result of a SampleCF invocation.
#[derive(Debug, Clone, Copy)]
pub struct CfEstimate {
    /// Estimated compression fraction.
    pub cf: f64,
    /// Rows of the sample index that was built.
    pub sample_rows: usize,
    /// Estimation cost: uncompressed data pages of the sample index
    /// (the §5.1 cost unit — sorting + compressing scales with this).
    pub cost_pages: f64,
    /// For MV indexes: the AE-estimated group count of the full MV
    /// (`None` for plain table indexes).
    pub mv_estimated_rows: Option<f64>,
}

/// Run SampleCF for an index at sampling fraction `f`.
///
/// ```
/// use cadb_sampling::{sample_cf, SampleManager};
/// use cadb_compression::CompressionKind;
/// use cadb_engine::IndexSpec;
///
/// let db = cadb_datagen::TpchGen::new(0.02).build().unwrap();
/// let t = db.table_id("lineitem").unwrap();
/// let shipdate = db.schema(t).column_id("shipdate").unwrap();
/// let spec = IndexSpec::secondary(t, vec![shipdate])
///     .with_compression(CompressionKind::Row);
///
/// let manager = SampleManager::new(&db, 42);
/// let est = sample_cf(&manager, &spec, 0.05).unwrap();
/// assert!(est.cf > 0.0 && est.cf < 1.0);
/// ```
pub fn sample_cf(manager: &SampleManager<'_>, spec: &IndexSpec, f: f64) -> Result<CfEstimate> {
    let _span = obs::span("sampling.sample_cf");
    obs::counter_add("sampling.sample_cf_calls", 1);
    let db = manager.db();
    // Locators of the sample build are spread over the full table's row
    // domain so their null-suppressed widths match the full build's.
    let domain = db.stats(spec.table).n_rows as usize;
    let (rows, dtypes, mv_rows_est) = if let Some(mv) = &spec.mv {
        let stats = create_mv_sample(manager, mv, f)?;
        let (rows, dtypes, _) = mv_index_row_stream(db, spec, &stats.rows)?;
        (rows, dtypes, Some(stats.estimated_groups))
    } else if let Some(filter) = &spec.partial_filter {
        let sample = manager.filtered_sample(spec.table, f, filter)?;
        // The filter already applied; strip it so the stream builder does
        // not filter twice (harmless but wasteful).
        let mut inner = spec.clone();
        inner.partial_filter = None;
        let (rows, dtypes, _) = index_row_stream_spread(db, &inner, &sample, domain)?;
        (rows, dtypes, None)
    } else {
        let sample = manager.table_sample(spec.table, f)?;
        let (rows, dtypes, _) = index_row_stream_spread(db, spec, &sample, domain)?;
        (rows, dtypes, None)
    };

    let m = compressed_index_size(&rows, &dtypes, spec.compression)?;
    Ok(CfEstimate {
        cf: full_build_fraction(&m, dtypes.len(), spec.compression),
        sample_rows: rows.len(),
        cost_pages: (m.uncompressed_bytes as f64 / PAGE_PAYLOAD as f64).max(1.0),
        mv_estimated_rows: mv_rows_est,
    })
}

/// Fixed encode-header bytes every leaf page pays regardless of its row
/// count: the page header (row count + column count) plus, per stored
/// column, the section tag and block-length word — and for PAGE
/// compression the anchor-length word. Null bitmaps and anchor payloads
/// scale with rows/data and are representative in a sample already.
fn fixed_page_header_bytes(n_cols: usize, kind: CompressionKind) -> f64 {
    let per_col = match kind {
        CompressionKind::Page => 7.0,
        _ => 5.0,
    };
    4.0 + per_col * n_cols as f64
}

/// Correct a sample measurement's fraction for page geometry: the raw
/// `compressed / uncompressed` of the sample amortizes the fixed per-page
/// header bytes over however many rows the (possibly single, underfull)
/// sample pages hold, while the full build packs leaves to
/// [`PAGE_PAYLOAD`]. Strip the sample's fixed header bytes from the leaf
/// payload and charge them back at the full build's rows-per-page rate.
/// A sample that already packs full pages is (almost) a fixed point.
fn full_build_fraction(m: &CompressionMeasurement, n_cols: usize, kind: CompressionKind) -> f64 {
    if m.n_rows == 0 || m.uncompressed_bytes == 0 || m.avg_rows_per_page <= 0.0 {
        return m.compression_fraction();
    }
    let fixed = fixed_page_header_bytes(n_cols, kind);
    let sample_pages = m.n_rows as f64 / m.avg_rows_per_page;
    let leaf = (m.compressed_bytes - m.dict_bytes) as f64;
    let payload = (leaf - fixed * sample_pages).max(0.0);
    // Full leaves hold `r` rows with `r·b + fixed = PAGE_PAYLOAD`, so the
    // header charge per payload byte is `fixed / (PAGE_PAYLOAD − fixed)`.
    let full_leaf = payload * PAGE_PAYLOAD as f64 / (PAGE_PAYLOAD as f64 - fixed);
    (full_leaf + m.dict_bytes as f64) / m.uncompressed_bytes as f64
}

/// Run SampleCF for a whole round of indexes at once, spreading the
/// expensive per-index sample builds over a worker pool.
///
/// This is the batched form the §5 planner drives: a greedy plan's
/// `Sampled` nodes are all independent, so their index builds (sort +
/// compress, the dominant advisor cost per §5.1) parallelize perfectly.
/// The sweep runs in two phases:
///
/// 1. **Pre-build.** Every distinct input the round shares — base table
///    samples, filtered samples of partial indexes, join synopses of MV
///    indexes — is built exactly once (in parallel across *distinct*
///    inputs), so the main sweep never duplicates shared work.
/// 2. **Sweep.** `sample_cf` runs for every spec on the pool; element `i`
///    of the result is exactly `sample_cf(manager, &specs[i], f)`.
///
/// Results — estimates *and* the manager's cost counters — are bit-for-bit
/// identical to calling [`sample_cf`] in a serial loop, for every
/// [`Parallelism`] setting (sample content is seed-derived per input, and
/// the manager counts cache fills insert-once).
pub fn sample_cf_batch(
    manager: &SampleManager<'_>,
    specs: &[IndexSpec],
    f: f64,
    par: Parallelism,
) -> Result<Vec<CfEstimate>> {
    let _span = obs::span("sampling.samplecf_batch");
    // Phase 1a: base samples (also the fact samples synopses draw from).
    let base_keys: Vec<(TableId, f64)> = specs
        .iter()
        .map(|s| (s.mv.as_ref().map(|m| m.root).unwrap_or(s.table), f))
        .collect();
    manager.prewarm_base_samples(&base_keys, par)?;

    // Phase 1b: distinct derived inputs (filtered samples, join synopses).
    let mut filters: Vec<(TableId, Predicate)> = Vec::new();
    let mut synopses: Vec<(TableId, Vec<JoinEdge>)> = Vec::new();
    for s in specs {
        if let Some(mv) = &s.mv {
            let key = (mv.root, mv.joins.clone());
            if !synopses.contains(&key) {
                synopses.push(key);
            }
        } else if let Some(p) = &s.partial_filter {
            let key = (s.table, p.clone());
            if !filters.contains(&key) {
                filters.push(key);
            }
        }
    }
    try_par_map(par, &filters, |_, (t, p)| manager.filtered_sample(*t, f, p))?;
    try_par_map(par, &synopses, |_, (t, j)| manager.join_synopsis(*t, j, f))?;

    // Phase 2: the SampleCF sweep itself.
    let _sweep = obs::span("sampling.sweep");
    try_par_map(par, specs, |_, s| sample_cf(manager, s, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_rows::true_compression_fraction;
    use cadb_common::{ColumnDef, ColumnId, DataType, Row, TableId, TableSchema, Value};
    use cadb_compression::CompressionKind;
    use cadb_engine::{Database, MvSpec, Predicate};

    fn db() -> Database {
        let mut db = Database::new();
        let t = db
            .create_table(
                TableSchema::new(
                    "t",
                    vec![
                        ColumnDef::new("k", DataType::Int),
                        ColumnDef::new("s", DataType::Char { len: 10 }),
                        ColumnDef::new("v", DataType::Int),
                        ColumnDef::new("g", DataType::Int),
                    ],
                    vec![ColumnId(0)],
                )
                .unwrap(),
            )
            .unwrap();
        let rows: Vec<Row> = (0..30_000)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::Str(format!("st{}", i % 12)),
                    Value::Int(i % 97),
                    Value::Int(i % 200),
                ])
            })
            .collect();
        db.insert_rows(t, rows).unwrap();
        db
    }

    #[test]
    fn samplecf_tracks_true_cf_for_ns() {
        // NULL suppression is order-independent and per-value, so SampleCF
        // should be nearly unbiased even at small f ([11]).
        let db = db();
        let m = SampleManager::new(&db, 11);
        let spec = IndexSpec::secondary(TableId(0), vec![ColumnId(1), ColumnId(2)])
            .with_compression(CompressionKind::Row);
        let truth = true_compression_fraction(&db, &spec).unwrap();
        let est = sample_cf(&m, &spec, 0.05).unwrap();
        let err = (est.cf - truth).abs() / truth;
        assert!(err < 0.10, "err={err} est={} truth={truth}", est.cf);
        assert!(est.cost_pages >= 1.0);
        assert!(est.mv_estimated_rows.is_none());
    }

    #[test]
    fn samplecf_biased_but_close_for_local_dict() {
        // Local dictionary (PAGE) depends on duplicates per page; samples
        // have fewer duplicates, so expect some bias — but the estimate
        // must still be in the right ballpark at a healthy fraction.
        let db = db();
        let m = SampleManager::new(&db, 12);
        let spec = IndexSpec::secondary(TableId(0), vec![ColumnId(1)])
            .with_compression(CompressionKind::Page);
        let truth = true_compression_fraction(&db, &spec).unwrap();
        let est = sample_cf(&m, &spec, 0.10).unwrap();
        let err = (est.cf - truth).abs() / truth;
        assert!(err < 0.5, "err={err} est={} truth={truth}", est.cf);
    }

    #[test]
    fn cost_grows_with_fraction_and_width() {
        let db = db();
        let m = SampleManager::new(&db, 13);
        let narrow = IndexSpec::secondary(TableId(0), vec![ColumnId(2)])
            .with_compression(CompressionKind::Row);
        let wide = IndexSpec::secondary(TableId(0), vec![ColumnId(2)])
            .with_includes(vec![ColumnId(0), ColumnId(1), ColumnId(3)])
            .with_compression(CompressionKind::Row);
        let c_narrow = sample_cf(&m, &narrow, 0.02).unwrap().cost_pages;
        let c_wide = sample_cf(&m, &wide, 0.02).unwrap().cost_pages;
        let c_bigger_f = sample_cf(&m, &narrow, 0.2).unwrap().cost_pages;
        assert!(c_wide > c_narrow);
        assert!(c_bigger_f > c_narrow);
    }

    #[test]
    fn partial_index_uses_filtered_sample() {
        let db = db();
        let m = SampleManager::new(&db, 14);
        let mut spec = IndexSpec::secondary(TableId(0), vec![ColumnId(2)])
            .with_compression(CompressionKind::Row);
        spec.partial_filter = Some(Predicate::eq(
            TableId(0),
            ColumnId(1),
            Value::Str("st3".into()),
        ));
        let est = sample_cf(&m, &spec, 0.10).unwrap();
        // Sample ~3000 rows, 1/12th pass the filter.
        assert!(est.sample_rows < 500, "{}", est.sample_rows);
        assert!(est.cf > 0.0 && est.cf <= 1.1);
    }

    #[test]
    fn mv_index_samplecf_reports_group_estimate() {
        let db = db();
        let m = SampleManager::new(&db, 15);
        let mv = MvSpec {
            root: TableId(0),
            joins: vec![],
            group_by: vec![(TableId(0), ColumnId(3))],
            agg_columns: vec![(TableId(0), ColumnId(2))],
        };
        let spec = IndexSpec {
            table: TableId(0),
            key_cols: vec![ColumnId(0)],
            include_cols: vec![],
            clustered: false,
            compression: CompressionKind::Row,
            partial_filter: None,
            mv: Some(mv),
        };
        let est = sample_cf(&m, &spec, 0.10).unwrap();
        let groups = est.mv_estimated_rows.unwrap();
        // Truth: 200 groups.
        assert!((groups - 200.0).abs() / 200.0 < 0.3, "groups={groups}");
    }

    #[test]
    fn amortization_one_sample_many_indexes() {
        let db = db();
        let m = SampleManager::new(&db, 16);
        for key in [0u16, 1, 2, 3] {
            let spec = IndexSpec::secondary(TableId(0), vec![ColumnId(key)])
                .with_compression(CompressionKind::Row);
            sample_cf(&m, &spec, 0.05).unwrap();
        }
        // One base sample serves all four indexes (the §4.1 amortization).
        assert_eq!(m.counters().base_samples, 1);
    }

    #[test]
    fn batch_matches_serial_loop_exactly() {
        let db = db();
        let mut specs: Vec<IndexSpec> = Vec::new();
        for key in [0u16, 1, 2, 3] {
            specs.push(
                IndexSpec::secondary(TableId(0), vec![ColumnId(key)])
                    .with_compression(CompressionKind::Row),
            );
            specs.push(
                IndexSpec::secondary(TableId(0), vec![ColumnId(key)])
                    .with_compression(CompressionKind::Page),
            );
        }
        let mut partial = IndexSpec::secondary(TableId(0), vec![ColumnId(2)])
            .with_compression(CompressionKind::Row);
        partial.partial_filter = Some(Predicate::eq(
            TableId(0),
            ColumnId(1),
            Value::Str("st3".into()),
        ));
        specs.push(partial);
        specs.push(IndexSpec {
            table: TableId(0),
            key_cols: vec![ColumnId(0)],
            include_cols: vec![],
            clustered: false,
            compression: CompressionKind::Row,
            partial_filter: None,
            mv: Some(MvSpec {
                root: TableId(0),
                joins: vec![],
                group_by: vec![(TableId(0), ColumnId(3))],
                agg_columns: vec![(TableId(0), ColumnId(2))],
            }),
        });

        let serial_mgr = SampleManager::new(&db, 17);
        let serial: Vec<CfEstimate> = specs
            .iter()
            .map(|s| sample_cf(&serial_mgr, s, 0.05).unwrap())
            .collect();
        for par in [
            cadb_common::Parallelism::Serial,
            cadb_common::Parallelism::Threads(2),
            cadb_common::Parallelism::Threads(8),
        ] {
            let mgr = SampleManager::new(&db, 17);
            let batch = sample_cf_batch(&mgr, &specs, 0.05, par).unwrap();
            assert_eq!(batch.len(), serial.len());
            for (b, s) in batch.iter().zip(&serial) {
                assert_eq!(b.cf.to_bits(), s.cf.to_bits(), "{par:?}");
                assert_eq!(b.sample_rows, s.sample_rows);
                assert_eq!(b.cost_pages.to_bits(), s.cost_pages.to_bits());
                assert_eq!(
                    b.mv_estimated_rows.map(f64::to_bits),
                    s.mv_estimated_rows.map(f64::to_bits)
                );
            }
            assert_eq!(mgr.counters(), serial_mgr.counters(), "{par:?}");
        }
    }
}
