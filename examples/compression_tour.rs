//! A tour of the compression substrate: build the same index under every
//! method, measure the real compressed sizes, verify lossless round-trips,
//! demonstrate the order-(in)dependence that drives the paper's deduction
//! taxonomy (§4.2), and cross-check the measurements through the
//! [`ExactEstimator`] strategy.
//!
//! ```sh
//! cargo run --release --example compression_tour
//! ```

use cadb::compression::analyze::compressed_index_size;
use cadb::compression::CompressionKind;
use cadb::core::strategy::{EstimationContext, SizeEstimator};
use cadb::core::ExactEstimator;
use cadb::datagen::TpchGen;
use cadb::engine::{IndexSpec, WhatIfOptimizer};
use cadb::sampling::index_rows::index_row_stream;
use cadb::sampling::SampleManager;
use cadb::storage::PhysicalIndex;

fn main() {
    let db = TpchGen::new(0.1).build().expect("generate database");
    let t = db.table_id("lineitem").expect("lineitem exists");
    let col = |n: &str| db.schema(t).column_id(n).expect("column");

    // An index over (returnflag, shipmode, shipdate, extendedprice):
    // low-cardinality leading columns — prime compression territory.
    let spec = IndexSpec::secondary(t, vec![col("returnflag"), col("shipmode")])
        .with_includes(vec![col("shipdate"), col("extendedprice")]);
    let (rows, dtypes, n_key) =
        index_row_stream(&db, &spec, db.table(t).rows()).expect("index stream");
    println!(
        "index rows: {}, stored columns: {} (keys: {n_key})\n",
        rows.len(),
        dtypes.len()
    );

    println!(
        "{:<8} {:>12} {:>8} {:>8} {:>12}",
        "method", "bytes", "CF", "pages", "rows/page"
    );
    for kind in [
        CompressionKind::None,
        CompressionKind::Row,
        CompressionKind::Page,
        CompressionKind::GlobalDict,
        CompressionKind::Rle,
    ] {
        let m = compressed_index_size(&rows, &dtypes, kind).expect("measure");
        println!(
            "{:<8} {:>12} {:>8.3} {:>8} {:>12.1}",
            kind.to_string(),
            m.compressed_bytes,
            m.compression_fraction(),
            m.n_pages,
            m.avg_rows_per_page
        );
    }

    // Losslessness: a physical B+Tree over PAGE-compressed leaves returns
    // exactly the rows that went in.
    let ix =
        PhysicalIndex::build(&rows, &dtypes, n_key, CompressionKind::Page).expect("build index");
    assert_eq!(ix.scan().expect("scan"), rows);
    println!(
        "\nPAGE-compressed B+Tree: {} leaf pages, {} bytes, scan round-trips ✓",
        ix.n_leaf_pages(),
        ix.size_bytes()
    );

    // Order dependence: permuting the key columns changes the size of
    // ORD-DEP methods but not ORD-IND ones.
    let spec_rev = IndexSpec::secondary(t, vec![col("shipmode"), col("returnflag")])
        .with_includes(vec![col("shipdate"), col("extendedprice")]);
    let (rows_rev, dtypes_rev, _) =
        index_row_stream(&db, &spec_rev, db.table(t).rows()).expect("index stream");
    println!("\nsame column set, reversed key order:");
    for kind in [
        CompressionKind::Row,
        CompressionKind::Page,
        CompressionKind::Rle,
    ] {
        let a = compressed_index_size(&rows, &dtypes, kind).expect("measure");
        let b = compressed_index_size(&rows_rev, &dtypes_rev, kind).expect("measure");
        let delta = (a.compressed_bytes as f64 - b.compressed_bytes as f64).abs()
            / a.compressed_bytes as f64;
        println!(
            "  {:<6} {:>10} vs {:>10} bytes  ({:>5.1}% apart — {})",
            kind.to_string(),
            a.compressed_bytes,
            b.compressed_bytes,
            delta * 100.0,
            if kind.order_dependent() {
                "ORD-DEP"
            } else {
                "ORD-IND"
            }
        );
    }

    // The same ground truth through the advisor's strategy surface:
    // ExactEstimator is the SizeEstimator that builds and measures for
    // real — the yardstick the sampling estimators are judged against.
    let opt = WhatIfOptimizer::new(&db);
    let manager = SampleManager::new(&db, 7);
    let ctx = EstimationContext {
        opt: &opt,
        manager: &manager,
    };
    let targets = [
        spec.with_compression(CompressionKind::Row),
        spec.with_compression(CompressionKind::Page),
    ];
    let report = ExactEstimator
        .estimate_sizes(&ctx, &targets, &[])
        .expect("exact measurement");
    println!(
        "\nvia the {} SizeEstimator strategy:",
        ExactEstimator.name()
    );
    for t in &targets {
        let est = report.estimates[t];
        println!(
            "  {:<52} cf {:.3} ({:>8.1} KiB)",
            t.to_string(),
            est.compression_fraction,
            est.bytes / 1024.0
        );
    }
}
