//! Deterministic RNG helpers.
//!
//! Every stochastic component in the workspace (data generation, sampling,
//! error calibration) takes an explicit seed so experiments are exactly
//! reproducible. This module centralizes seed derivation so that two
//! components seeded from the same root seed do not accidentally share a
//! stream.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derive a child seed from a root seed and a string label.
///
/// Uses the FNV-1a mixing function — not cryptographic, but well-dispersed
/// and stable across platforms and releases, which is what reproducible
/// experiments need.
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ root.rotate_left(17);
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    // Final avalanche (splitmix64 finalizer).
    let mut z = h.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A seeded [`StdRng`] for the given root seed and label.
pub fn rng_for(root: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(42, "tpch"), derive_seed(42, "tpch"));
    }

    #[test]
    fn labels_separate_streams() {
        assert_ne!(derive_seed(42, "tpch"), derive_seed(42, "sales"));
        assert_ne!(derive_seed(42, "tpch"), derive_seed(43, "tpch"));
    }

    #[test]
    fn rng_reproducible() {
        let a: u64 = rng_for(7, "x").gen();
        let b: u64 = rng_for(7, "x").gen();
        let c: u64 = rng_for(7, "y").gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
