//! SQL tokenizer.
//!
//! Case-insensitive keywords, single-quoted strings (with `''` escaping),
//! integer and decimal numbers, identifiers and punctuation.

use cadb_common::{CadbError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier, lower-cased.
    Word(String),
    /// Numeric literal, kept textual until parsing decides int vs decimal.
    Number(String),
    /// Single-quoted string literal (unescaped).
    String(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `.`
    Dot,
    /// `;`
    Semi,
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push(Token::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Token::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Token::Comma);
                i += 1;
            }
            '*' => {
                toks.push(Token::Star);
                i += 1;
            }
            '+' => {
                toks.push(Token::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Token::Minus);
                i += 1;
            }
            '/' => {
                toks.push(Token::Slash);
                i += 1;
            }
            '.' => {
                toks.push(Token::Dot);
                i += 1;
            }
            ';' => {
                toks.push(Token::Semi);
                i += 1;
            }
            '=' => {
                toks.push(Token::Eq);
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                toks.push(Token::Neq);
                i += 2;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    toks.push(Token::Neq);
                    i += 2;
                } else {
                    toks.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Token::Ge);
                    i += 2;
                } else {
                    toks.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(CadbError::Parse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                toks.push(Token::String(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                toks.push(Token::Number(input[start..i].to_string()));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(Token::Word(input[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(CadbError::Parse(format!(
                    "unexpected character {other:?} at byte {i}"
                )))
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_lowercased() {
        let t = tokenize("SELECT Price FROM Sales").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Word("select".into()),
                Token::Word("price".into()),
                Token::Word("from".into()),
                Token::Word("sales".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        let t = tokenize("a<=b <> c >= d < e > f != g = h").unwrap();
        let ops: Vec<&Token> = t.iter().filter(|t| !matches!(t, Token::Word(_))).collect();
        assert_eq!(
            ops,
            vec![
                &Token::Le,
                &Token::Neq,
                &Token::Ge,
                &Token::Lt,
                &Token::Gt,
                &Token::Neq,
                &Token::Eq
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let t = tokenize("'it''s' 'CA'").unwrap();
        assert_eq!(
            t,
            vec![Token::String("it's".into()), Token::String("CA".into())]
        );
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn numbers_and_punct() {
        let t = tokenize("12.5, (42)").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Number("12.5".into()),
                Token::Comma,
                Token::LParen,
                Token::Number("42".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("select -- the projection\n x").unwrap();
        assert_eq!(
            t,
            vec![Token::Word("select".into()), Token::Word("x".into())]
        );
    }

    #[test]
    fn bad_char_errors() {
        assert!(tokenize("select @x").is_err());
    }
}
