//! # cadb-exec
//!
//! A vectorized execution engine that runs workload queries **directly
//! over compressed pages**, plus the actuals harness that closes the
//! estimated-vs-actual loop: everything upstream of this crate *estimates*
//! (SampleCF, deductions, what-if costing); this crate *builds, executes
//! and measures*.
//!
//! ## Compressed execution
//!
//! Scans read an index's encoded leaves through
//! [`cadb_storage::PhysicalIndex::page_cursor`] and build per-column
//! [`vector::ColumnVector`]s straight from the page's column sections —
//! RLE columns stay as `(run_len, value)` pairs, dictionary columns (PAGE
//! local dictionaries, index-wide global dictionaries) as decoded entries
//! plus per-row codes. The kernels short-circuit on that structure:
//! filters evaluate a predicate once per run or dictionary entry, gathers
//! clone from the one decoded value, and scalar integer aggregates
//! collapse a run to `run_len × value` with exact `i128` arithmetic.
//!
//! Every scan is also available as a `decompress-then-execute` reference
//! ([`scan::ExecMode::Reference`]) that decodes whole pages and operates
//! row at a time. The two paths are **bit-identical by contract** for all
//! codecs and every [`cadb_common::Parallelism`] setting (leaves are
//! batched over `cadb_common::par` with partials merged in leaf order);
//! `tests/exec_equivalence.rs` and this crate's property tests pin it.
//!
//! ## Access-path planning
//!
//! [`planner`] picks, per query, the cheapest structure the materialized
//! configuration holds: the base structure, a covering secondary index
//! (seeking on a key range extracted from the query's sargable prefix
//! predicates — [`cadb_engine::extract_key_range`] →
//! [`cadb_storage::PhysicalIndex::page_cursor_range`]), or a matching MV
//! index that answers a grouped query outright. Planned execution
//! ([`scan::ExecMode::Compressed`]) is pinned bit-for-bit against
//! [`scan::ExecMode::ForcedBase`] (full base scans, same kernels) and the
//! reference by `tests/plan_equivalence.rs` and the metamorphic
//! properties in `tests/planner_properties.rs`.
//!
//! ## Actuals
//!
//! [`MeasuredRun`] materializes a recommended
//! [`cadb_engine::Configuration`] into real compressed structures (via the
//! same row streams the estimators sample), executes the workload's
//! queries over them in both modes, and reports measured size and row
//! counts next to the advisor's estimates with relative error — the
//! [`MeasuredReport`] the `repro -- exec` experiment prints and
//! `cadb::TuningSession::execute` returns. Its residual ratios feed
//! `cadb_core::ErrorModel::calibrate_samplecf`, so measurement flows back
//! into the model that produced the estimates.
//!
//! ## The write path
//!
//! [`store`] closes the *other* half of that loop: a snapshot-isolated
//! MVCC [`Store`] over the same materialized configuration commits the
//! workload's INSERT/UPDATE statements through a WAL'd single-log,
//! multi-writer path with incremental secondary-index and MV maintenance
//! — so `mv_maintenance_cost` and per-statement write costs in a
//! [`MeasuredReport`] are *measured* (actual rows matched, columns
//! changed, MV groups touched), not what-if guesses. Crash recovery
//! replays the log into a fresh store and reproduces the committed state
//! bit for bit; `tests/store_recovery.rs` tears the log at every sync
//! point to prove it.
//!
//! [`store::sharded::ShardedStore`] serves the same write path in
//! **sharded mode**: per-shard WAL segments routed by the build path's
//! [`cadb_shard::Partitioning`] policies, stitched into one total order
//! by a commit-order log — with snapshots, digests and per-statement
//! actuals bit-identical to the monolithic store for every shard count,
//! parallelism mode and batch size
//! (`tests/sharded_store_equivalence.rs`).

#![warn(missing_docs)]

pub mod measured;
pub mod planner;
pub mod query;
pub mod scan;
pub mod store;
pub mod vector;

pub use measured::{
    MaterializedConfig, MeasuredReport, MeasuredRun, MeasuredStructure, WriteCostActual,
    DEFAULT_WRITE_SEED,
};
pub use planner::{plan_query, PathKind, QueryPlan, TablePath};
pub use query::{execute_planned, execute_query};
pub use scan::{
    scan_aggregate, scan_aggregate_range, scan_filter, scan_filter_range, BoundPredicate, ExecMode,
    ExecStats,
};
pub use store::sharded::{
    ShardStats, ShardedCheckpoint, ShardedRecoveryReport, ShardedStore, MAX_SERVE_SHARDS,
};
pub use store::{
    CommitReceipt, PageCacheStats, RecoveryReport, Snapshot, Store, StoreCheckpoint, StoreTotals,
    WriteActual, WriteKind,
};
pub use vector::{ColumnVector, IntAggregate, VectorData};
