//! Sequence helpers (subset of `rand::seq`).

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly choose one element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rngs::StdRng, SeedableRng};

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 100 elements in order");
    }
}
