//! Cross-run determinism of every generator: the same configuration must
//! produce bit-identical databases and workloads, and seeds must actually
//! steer the streams. Tier-1 reproducibility (and the paper-reproduction
//! claims in EXPERIMENTS.md) rest on this.

use cadb_common::rng::rng_for;
use cadb_datagen::{SalesGen, TpcdsGen, TpchGen, Zipf};
use cadb_engine::Database;

/// All rows of all tables, in catalog order.
fn all_rows(db: &Database) -> Vec<Vec<cadb_common::Row>> {
    db.table_ids()
        .into_iter()
        .map(|t| db.table(t).rows().to_vec())
        .collect()
}

#[test]
fn tpch_builds_identically_across_runs() {
    let a = TpchGen::new(0.01).build().unwrap();
    let b = TpchGen::new(0.01).build().unwrap();
    assert_eq!(all_rows(&a), all_rows(&b));

    let wa = TpchGen::new(0.01).workload(&a).unwrap();
    let wb = TpchGen::new(0.01).workload(&b).unwrap();
    assert_eq!(wa.statements.len(), wb.statements.len());
    for ((sa, fa), (sb, fb)) in wa.statements.iter().zip(&wb.statements) {
        assert_eq!(sa, sb);
        assert_eq!(fa, fb);
    }
}

#[test]
fn tpch_seed_steers_the_data() {
    let a = TpchGen::new(0.01).build().unwrap();
    let c = TpchGen::new(0.01).with_seed(7).build().unwrap();
    assert_ne!(all_rows(&a), all_rows(&c), "different seeds, same data");
    // …while the same explicit seed reproduces itself.
    let c2 = TpchGen::new(0.01).with_seed(7).build().unwrap();
    assert_eq!(all_rows(&c), all_rows(&c2));
}

#[test]
fn tpch_skew_is_deterministic_too() {
    let a = TpchGen::with_skew(0.01, 1.0).build().unwrap();
    let b = TpchGen::with_skew(0.01, 1.0).build().unwrap();
    assert_eq!(all_rows(&a), all_rows(&b));
}

#[test]
fn tpcds_builds_identically_across_runs() {
    let a = TpcdsGen::new(0.02).build().unwrap();
    let b = TpcdsGen::new(0.02).build().unwrap();
    assert_eq!(all_rows(&a), all_rows(&b));
    let c = TpcdsGen::new(0.02).with_seed(123).build().unwrap();
    assert_ne!(all_rows(&a), all_rows(&c));
}

#[test]
fn sales_builds_identically_across_runs() {
    let a = SalesGen::new(0.01).build().unwrap();
    let b = SalesGen::new(0.01).build().unwrap();
    assert_eq!(all_rows(&a), all_rows(&b));

    let wa = SalesGen::new(0.01).workload(&a).unwrap();
    let wb = SalesGen::new(0.01).workload(&b).unwrap();
    assert_eq!(wa.statements, wb.statements);

    let c = SalesGen::new(0.01).with_seed(9).build().unwrap();
    assert_ne!(all_rows(&a), all_rows(&c));
}

#[test]
fn zipf_draws_are_deterministic_per_seed() {
    let z = Zipf::new(100, 1.0);
    let draw = |seed: u64| -> Vec<usize> {
        let mut rng = rng_for(seed, "zipf-determinism");
        (0..1000).map(|_| z.sample(&mut rng)).collect()
    };
    assert_eq!(draw(1), draw(1));
    assert_ne!(draw(1), draw(2));
}
