//! A minimal, stable byte codec for [`Value`]s and [`Row`]s.
//!
//! This is the on-the-wire representation shared by the WAL frame payloads
//! (`cadb_storage::wal`) and the page patch sections
//! (`cadb_compression::patch`): tagged values, little-endian integers,
//! length-prefixed strings. The format is deliberately simple — recovery
//! correctness depends on it being unambiguous, not on it being small
//! (compression happens at page level, not in the log).
//!
//! Layout per value: `[tag u8]` then
//!
//! * tag 0 — SQL NULL, no payload
//! * tag 1 — `Int`, 8-byte little-endian `i64`
//! * tag 2 — `Str`, `[len u32 LE][utf-8 bytes]`
//!
//! A row is its arity as `u32` followed by its values.

use crate::error::{CadbError, Result};
use crate::row::Row;
use crate::value::Value;

/// Append a `u32` in little-endian order.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Read a `u32` at `*off`, advancing it.
pub fn get_u32(bytes: &[u8], off: &mut usize) -> Result<u32> {
    let end = off
        .checked_add(4)
        .filter(|e| *e <= bytes.len())
        .ok_or_else(|| truncated("u32"))?;
    let v = u32::from_le_bytes(bytes[*off..end].try_into().unwrap());
    *off = end;
    Ok(v)
}

/// Read a `u64` at `*off`, advancing it.
pub fn get_u64(bytes: &[u8], off: &mut usize) -> Result<u64> {
    let end = off
        .checked_add(8)
        .filter(|e| *e <= bytes.len())
        .ok_or_else(|| truncated("u64"))?;
    let v = u64::from_le_bytes(bytes[*off..end].try_into().unwrap());
    *off = end;
    Ok(v)
}

fn truncated(what: &str) -> CadbError {
    CadbError::Storage(format!("byte codec: truncated {what}"))
}

/// Append one tagged value.
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(2);
            put_u32(buf, s.len() as u32);
            buf.extend_from_slice(s.as_bytes());
        }
    }
}

/// Read one tagged value at `*off`, advancing it.
pub fn get_value(bytes: &[u8], off: &mut usize) -> Result<Value> {
    let tag = *bytes.get(*off).ok_or_else(|| truncated("value tag"))?;
    *off += 1;
    match tag {
        0 => Ok(Value::Null),
        1 => {
            let end = off
                .checked_add(8)
                .filter(|e| *e <= bytes.len())
                .ok_or_else(|| truncated("i64"))?;
            let v = i64::from_le_bytes(bytes[*off..end].try_into().unwrap());
            *off = end;
            Ok(Value::Int(v))
        }
        2 => {
            let len = get_u32(bytes, off)? as usize;
            let end = off
                .checked_add(len)
                .filter(|e| *e <= bytes.len())
                .ok_or_else(|| truncated("string payload"))?;
            let s = std::str::from_utf8(&bytes[*off..end])
                .map_err(|_| CadbError::Storage("byte codec: invalid utf-8".into()))?;
            *off = end;
            Ok(Value::Str(s.to_string()))
        }
        t => Err(CadbError::Storage(format!(
            "byte codec: unknown value tag {t}"
        ))),
    }
}

/// Append a row (arity-prefixed values).
pub fn put_row(buf: &mut Vec<u8>, row: &Row) {
    put_u32(buf, row.arity() as u32);
    for v in &row.values {
        put_value(buf, v);
    }
}

/// Read a row at `*off`, advancing it.
pub fn get_row(bytes: &[u8], off: &mut usize) -> Result<Row> {
    let arity = get_u32(bytes, off)? as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(get_value(bytes, off)?);
    }
    Ok(Row::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let vals = [
            Value::Null,
            Value::Int(0),
            Value::Int(-123_456_789),
            Value::Int(i64::MAX),
            Value::Str(String::new()),
            Value::Str("hello WAL".into()),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            put_value(&mut buf, v);
        }
        let mut off = 0;
        for v in &vals {
            assert_eq!(&get_value(&buf, &mut off).unwrap(), v);
        }
        assert_eq!(off, buf.len());
    }

    #[test]
    fn row_roundtrip() {
        let row = Row::new(vec![Value::Int(7), Value::Str("x".into()), Value::Null]);
        let mut buf = Vec::new();
        put_row(&mut buf, &row);
        let mut off = 0;
        assert_eq!(get_row(&buf, &mut off).unwrap(), row);
        assert_eq!(off, buf.len());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Str("truncate me".into()));
        for cut in 0..buf.len() {
            let mut off = 0;
            assert!(get_value(&buf[..cut], &mut off).is_err());
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut off = 0;
        assert!(get_value(&[9], &mut off).is_err());
    }
}
