//! Figures 12–17: design quality over storage budgets.
//!
//! * Figures 12/13: TPC-H, simple indexes, SELECT- vs INSERT-intensive,
//!   ablating Skyline and Backtracking (DTAc(Both)/Skyline/Backtrack/
//!   DTAc(None)/DTA).
//! * Figures 14/15: Sales, simple indexes, DTAc vs DTA.
//! * Figures 16/17: TPC-H, all features (partial + MV indexes), DTAc vs DTA.
//!
//! Budgets are expressed as fractions of the uncompressed base-table size,
//! mirroring the paper's "10 %–100 % of the database size without indexes"
//! sweep (Appendix D.2). "Improvement" is the estimated workload runtime
//! improvement over the unindexed database, exactly the paper's metric.

use crate::report::Table;
use cadb_core::{Advisor, AdvisorOptions, FeatureSet};
use cadb_engine::{Database, Workload};

/// Which advisor variants a figure compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariantSet {
    /// DTAc(Both) / Skyline / Backtrack / DTAc(None) / DTA (Figures 12–13).
    Ablation,
    /// DTAc vs DTA (Figures 14–17).
    DtacVsDta,
}

fn variants(set: VariantSet, budget: f64, features: FeatureSet) -> Vec<(String, AdvisorOptions)> {
    let base = AdvisorOptions::dtac(budget).with_features(features);
    match set {
        VariantSet::Ablation => vec![
            ("DTAc(Both)".into(), base.clone()),
            (
                "Skyline".into(),
                AdvisorOptions {
                    backtracking: false,
                    ..base.clone()
                },
            ),
            (
                "Backtrack".into(),
                AdvisorOptions {
                    skyline: false,
                    ..base.clone()
                },
            ),
            (
                "DTAc(None)".into(),
                AdvisorOptions {
                    skyline: false,
                    backtracking: false,
                    ..base.clone()
                },
            ),
            (
                "DTA".into(),
                AdvisorOptions::dta(budget).with_features(features),
            ),
        ],
        VariantSet::DtacVsDta => vec![
            ("DTAc".into(), base),
            (
                "DTA".into(),
                AdvisorOptions::dta(budget).with_features(features),
            ),
        ],
    }
}

/// Run one improvement-vs-budget figure.
#[allow(clippy::too_many_arguments)]
pub fn design_figure(
    title: &str,
    db: &Database,
    workload: &Workload,
    insert_weight: f64,
    budget_fracs: &[f64],
    set: VariantSet,
    features: FeatureSet,
) -> Table {
    let w = workload.with_insert_weight(insert_weight);
    let base_bytes = db.base_data_bytes() as f64;
    let names: Vec<String> = variants(set, 0.0, features)
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    let mut headers: Vec<&str> = vec!["budget"];
    let name_refs: Vec<String> = names.clone();
    for n in &name_refs {
        headers.push(n.as_str());
    }
    let mut t = Table::new(title, &headers);
    for &frac in budget_fracs {
        let budget = base_bytes * frac;
        let mut row = vec![format!("{:.0}%", frac * 100.0)];
        for (_, opts) in variants(set, budget, features) {
            let rec = Advisor::new(db, opts).recommend(&w).expect("advisor run");
            row.push(format!("{:.1}", rec.improvement_percent()));
        }
        t.row(row);
    }
    t
}

/// Standard budget grid used by all design figures.
pub const BUDGETS: [f64; 5] = [0.08, 0.15, 0.3, 0.5, 0.8];

/// SELECT-intensive insert weight.
pub const SELECT_INTENSIVE: f64 = 0.1;
/// INSERT-intensive insert weight.
pub const INSERT_INTENSIVE: f64 = 150.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn improvements(t: &Table, col: usize) -> Vec<f64> {
        t.rows.iter().map(|r| r[col].parse().unwrap()).collect()
    }

    #[test]
    fn dtac_dominates_dta_select_intensive() {
        let gen = cadb_datagen::TpchGen::new(0.01);
        let db = gen.build().unwrap();
        let w = gen.workload(&db).unwrap();
        let t = design_figure(
            "test",
            &db,
            &w,
            SELECT_INTENSIVE,
            &[0.1, 0.3, 0.7],
            VariantSet::DtacVsDta,
            FeatureSet::Simple,
        );
        let dtac = improvements(&t, 1);
        let dta = improvements(&t, 2);
        for (c, d) in dtac.iter().zip(&dta) {
            assert!(c + 1e-6 >= *d, "DTAc {c} < DTA {d}");
        }
        // Somewhere DTAc must be strictly better (the paper: factor 1.5–2
        // in tight budgets).
        assert!(dtac.iter().zip(&dta).any(|(c, d)| c > &(d + 1.0)));
        // Improvement grows (weakly) with budget for the same variant.
        assert!(dtac.windows(2).all(|w| w[1] >= w[0] - 2.0));
    }

    #[test]
    fn ablation_table_has_five_variants() {
        let gen = cadb_datagen::TpchGen::new(0.01);
        let db = gen.build().unwrap();
        let w = gen.workload(&db).unwrap();
        let t = design_figure(
            "test",
            &db,
            &w,
            SELECT_INTENSIVE,
            &[0.15],
            VariantSet::Ablation,
            FeatureSet::Simple,
        );
        assert_eq!(t.headers.len(), 6);
        let both: f64 = t.rows[0][1].parse().unwrap();
        let none: f64 = t.rows[0][4].parse().unwrap();
        let dta: f64 = t.rows[0][5].parse().unwrap();
        assert!(both + 1e-6 >= none);
        assert!(both > dta);
    }
}
