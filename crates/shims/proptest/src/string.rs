//! `&str` patterns as string strategies.
//!
//! Real proptest accepts any regex; this shim implements the subset the
//! workspace's tests use — sequences of literal characters and character
//! classes (`[a-z0-9 ]`), each optionally followed by `{n}`, `{m,n}`, `*`,
//! `+`, or `?`. Unsupported syntax panics loudly at generation time rather
//! than silently producing wrong distributions.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Piece {
    /// Candidate characters and a repeat range [min, max] (inclusive).
    Class {
        chars: Vec<char>,
        min: u32,
        max: u32,
    },
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>, pattern: &str) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in pattern {pattern:?}"));
        match c {
            ']' => return out,
            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let lo = prev.take().unwrap();
                let hi = chars.next().unwrap();
                assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                // `lo` is already in `out`; append the rest of the span.
                for u in (lo as u32 + 1)..=(hi as u32) {
                    out.push(char::from_u32(u).expect("invalid char in class range"));
                }
            }
            c => {
                out.push(c);
                prev = Some(c);
            }
        }
    }
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars>, pattern: &str) -> (u32, u32) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}")),
                    hi.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}")),
                ),
                None => {
                    let n = body
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("bad repeat in {pattern:?}"));
                    (n, n)
                }
            }
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let class = match c {
            '[' => parse_class(&mut chars, pattern),
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                vec![esc]
            }
            '.' => (' '..='~').collect(),
            '(' | ')' | '|' => panic!("unsupported regex syntax {c:?} in pattern {pattern:?}"),
            c => vec![c],
        };
        let (min, max) = parse_repeat(&mut chars, pattern);
        assert!(min <= max, "inverted repeat bound in pattern {pattern:?}");
        pieces.push(Piece::Class {
            chars: class,
            min,
            max,
        });
    }
    pieces
}

fn generate_from(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for Piece::Class { chars, min, max } in parse(pattern) {
        assert!(
            !chars.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        let n = rng.uniform_i128(min as i128, max as i128 + 1) as u32;
        for _ in 0..n {
            out.push(chars[rng.uniform_usize(0, chars.len())]);
        }
    }
    out
}

/// Shrink a generated string by shortening, but only when the pattern is a
/// single character class with `min == 0` (e.g. `"[a-z ]{0,12}"`) — any
/// prefix of such a string is still in the pattern's language. Multi-piece
/// patterns are left unshrunk rather than risk proposing out-of-language
/// counterexamples that fail for unrelated reasons.
fn shrink_from(pattern: &str, value: &str) -> Vec<String> {
    let pieces = parse(pattern);
    let [Piece::Class { min: 0, .. }] = pieces.as_slice() else {
        return Vec::new();
    };
    let n = value.chars().count();
    if n == 0 {
        return Vec::new();
    }
    let prefix = |k: usize| -> String { value.chars().take(k).collect() };
    let mut out = vec![String::new()];
    for k in [n / 2, n - 1] {
        if k > 0 && k < n {
            let cand = prefix(k);
            if !out.contains(&cand) {
                out.push(cand);
            }
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from(self, rng)
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        shrink_from(self, value)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from(self, rng)
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        shrink_from(self, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_repeat() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = "[a-z ]{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literal_and_plus() {
        let mut rng = TestRng::from_seed(2);
        let s = "ab[0-9]+".generate(&mut rng);
        assert!(s.starts_with("ab"));
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
        assert!(!s[2..].is_empty());
    }
}
