//! Per-query candidate generation.
//!
//! For each query the advisor derives the syntactically relevant structures
//! (§6.1): indexes keyed on sargable predicate columns (equalities first,
//! then one range column), covering variants with the query's used columns
//! as includes, group-by-ordered indexes for streaming aggregation,
//! clustered candidates, and — with [`FeatureSet::All`] — partial indexes
//! for selective equality conjuncts and MV indexes for grouped join
//! queries. With compression enabled, every candidate also appears in its
//! ROW- and PAGE-compressed variants (the SQL Server methods DTAc
//! enumerates).

use super::{dedup_pool, AdvisorOptions, FeatureSet};
use cadb_common::ColumnId;
use cadb_compression::CompressionKind;
use cadb_engine::{cardinality, IndexSpec, MvSpec, Query, WhatIfOptimizer, Workload};

/// Partial-index filters are generated for equality predicates at least
/// this selective (fraction of rows retained).
const PARTIAL_MAX_SELECTIVITY: f64 = 0.25;

/// Generate the raw candidate pool for a workload.
pub fn generate_candidates(
    opt: &WhatIfOptimizer<'_>,
    workload: &Workload,
    options: &AdvisorOptions,
) -> Vec<IndexSpec> {
    let mut pool: Vec<IndexSpec> = Vec::new();
    for (q, _) in workload.queries() {
        query_candidates(opt, q, options, &mut pool);
    }
    // Base-table compression candidates: a compressed clustered index on
    // the PK of every touched table ("DTAc might produce indexes even with
    // 0% space budget by compressing existing tables", App. D.2).
    if options.compression {
        let mut tables: Vec<_> = workload
            .queries()
            .flat_map(|(q, _)| q.tables())
            .chain(workload.inserts().map(|(i, _)| i.table))
            .collect();
        tables.sort_unstable();
        tables.dedup();
        for t in tables {
            let pk = opt.db().schema(t).primary_key.clone();
            let key = if pk.is_empty() { vec![ColumnId(0)] } else { pk };
            pool.push(IndexSpec::clustered(t, key));
        }
    }

    expand_compression(pool, options)
}

/// Add ROW/PAGE variants of every candidate (keeping the uncompressed one).
pub(crate) fn expand_compression(pool: Vec<IndexSpec>, options: &AdvisorOptions) -> Vec<IndexSpec> {
    let mut out = Vec::with_capacity(pool.len() * 3);
    for spec in pool {
        out.push(spec.clone());
        if options.compression {
            for kind in CompressionKind::SQL_SERVER {
                out.push(spec.with_compression(kind));
            }
        }
    }
    dedup_pool(&mut out);
    out
}

fn query_candidates(
    opt: &WhatIfOptimizer<'_>,
    q: &Query,
    options: &AdvisorOptions,
    pool: &mut Vec<IndexSpec>,
) {
    for t in q.tables() {
        let preds = q.predicates_on(t);
        let used = q.used_on(t);
        let eq_cols: Vec<ColumnId> = preds
            .iter()
            .filter(|p| p.is_equality())
            .map(|p| p.column)
            .collect();
        let range_cols: Vec<ColumnId> = preds
            .iter()
            .filter(|p| p.is_sargable() && !p.is_equality())
            .map(|p| p.column)
            .collect();
        let group_cols: Vec<ColumnId> = q
            .group_by
            .iter()
            .filter(|(gt, _)| *gt == t)
            .map(|(_, c)| *c)
            .collect();
        let join_cols: Vec<ColumnId> = q
            .joins
            .iter()
            .flat_map(|j| {
                let mut v = Vec::new();
                if j.left.0 == t {
                    v.push(j.left.1);
                }
                if j.right.0 == t {
                    v.push(j.right.1);
                }
                v
            })
            .collect();

        let mut keys: Vec<Vec<ColumnId>> = Vec::new();
        // Equalities + one range column.
        if !eq_cols.is_empty() || !range_cols.is_empty() {
            if range_cols.is_empty() {
                keys.push(eq_cols.clone());
            }
            for r in &range_cols {
                let mut k = eq_cols.clone();
                k.push(*r);
                keys.push(k);
                // Range-first ordering too: it wins when the range is the
                // only predicate used for clustering-like scans.
                if !eq_cols.is_empty() {
                    let mut k2 = vec![*r];
                    k2.extend(eq_cols.iter().copied());
                    keys.push(k2);
                }
            }
        }
        // Singletons for every sargable predicate column.
        for p in &preds {
            if p.is_sargable() {
                keys.push(vec![p.column]);
            }
        }
        // Group-by order (streaming aggregation).
        if !group_cols.is_empty() {
            keys.push(group_cols.clone());
        }
        // Join columns (lookup side).
        for jc in &join_cols {
            keys.push(vec![*jc]);
        }

        for key in keys {
            if key.is_empty() || key.len() > 6 {
                continue;
            }
            let mut dedup_key = key.clone();
            dedup_key.dedup();
            let spec = IndexSpec::secondary(t, dedup_key.clone());
            pool.push(spec.clone());
            // Covering variant.
            let includes: Vec<ColumnId> = used
                .iter()
                .filter(|c| !dedup_key.contains(c))
                .copied()
                .collect();
            if !includes.is_empty() && includes.len() + dedup_key.len() <= 10 {
                pool.push(IndexSpec::secondary(t, dedup_key.clone()).with_includes(includes));
            }
            // Clustered candidate on the leading range/group column of the
            // root table (re-orders the whole table).
            if t == q.root && options.compression {
                pool.push(IndexSpec::clustered(t, dedup_key));
            }
        }

        // Partial indexes: filter on a selective equality predicate, key on
        // the remaining sargable columns (App. B.1 / §7 "partial indexes").
        if options.features == FeatureSet::All {
            for p in &preds {
                if !p.is_equality() {
                    continue;
                }
                let sel = cardinality::predicate_selectivity(opt.db(), p);
                if sel > PARTIAL_MAX_SELECTIVITY {
                    continue;
                }
                let mut key: Vec<ColumnId> = range_cols.clone();
                key.extend(eq_cols.iter().filter(|c| **c != p.column).copied());
                if key.is_empty() {
                    key.push(p.column);
                }
                key.truncate(4);
                let includes: Vec<ColumnId> = used
                    .iter()
                    .filter(|c| !key.contains(c) && **c != p.column)
                    .copied()
                    .collect();
                let mut spec = IndexSpec::secondary(t, key).with_includes(includes);
                spec.partial_filter = Some((*p).clone());
                pool.push(spec);
            }
        }
    }

    // MV candidates: grouped (optionally joined) queries (App. B.2–B.3).
    if options.features == FeatureSet::All && !q.group_by.is_empty() {
        let agg_columns: Vec<(cadb_common::TableId, ColumnId)> = {
            let mut v: Vec<_> = q
                .aggregates
                .iter()
                .flat_map(|a| a.columns.iter().copied())
                .filter(|tc| !q.group_by.contains(tc))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mv = MvSpec {
            root: q.root,
            joins: {
                let mut j = q.joins.clone();
                j.sort_unstable();
                j
            },
            group_by: q.group_by.clone(),
            agg_columns,
        };
        let n_stored = mv.stored_columns();
        let spec = IndexSpec {
            table: q.root,
            key_cols: (0..q.group_by.len().min(n_stored) as u16)
                .map(ColumnId)
                .collect(),
            include_cols: (q.group_by.len() as u16..n_stored as u16)
                .map(ColumnId)
                .collect(),
            clustered: false,
            compression: CompressionKind::None,
            partial_filter: None,
            mv: Some(mv),
        };
        pool.push(spec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadb_datagen::TpchGen;

    fn setup() -> (cadb_engine::Database, Workload) {
        let g = TpchGen::new(0.01);
        let db = g.build().unwrap();
        let w = g.workload(&db).unwrap();
        (db, w)
    }

    #[test]
    fn candidates_cover_queries_and_variants() {
        let (db, w) = setup();
        let opt = WhatIfOptimizer::new(&db);
        let options = AdvisorOptions::dtac(1e9);
        let pool = generate_candidates(&opt, &w, &options);
        assert!(pool.len() > 50, "pool has {} specs", pool.len());
        // Compressed variants present.
        assert!(pool.iter().any(|s| s.compression == CompressionKind::Row));
        assert!(pool.iter().any(|s| s.compression == CompressionKind::Page));
        // Covering variants present.
        assert!(pool.iter().any(|s| !s.include_cols.is_empty()));
        // Clustered candidates present.
        assert!(pool.iter().any(|s| s.clustered));
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for s in &pool {
            assert!(seen.insert(s.clone()), "duplicate {s}");
        }
    }

    #[test]
    fn dta_mode_has_no_compressed_candidates() {
        let (db, w) = setup();
        let opt = WhatIfOptimizer::new(&db);
        let options = AdvisorOptions::dta(1e9);
        let pool = generate_candidates(&opt, &w, &options);
        assert!(pool.iter().all(|s| s.compression == CompressionKind::None));
    }

    #[test]
    fn all_features_add_partial_and_mv() {
        let (db, w) = setup();
        let opt = WhatIfOptimizer::new(&db);
        let options = AdvisorOptions::dtac(1e9).with_features(FeatureSet::All);
        let pool = generate_candidates(&opt, &w, &options);
        assert!(pool.iter().any(|s| s.is_partial()), "no partial indexes");
        assert!(pool.iter().any(|s| s.is_mv_index()), "no MV indexes");
        // Simple mode excludes them.
        let simple = generate_candidates(&opt, &w, &AdvisorOptions::dtac(1e9));
        assert!(simple.iter().all(|s| !s.is_partial() && !s.is_mv_index()));
    }

    #[test]
    fn key_width_capped() {
        let (db, w) = setup();
        let opt = WhatIfOptimizer::new(&db);
        let pool = generate_candidates(&opt, &w, &AdvisorOptions::dtac(1e9));
        for s in &pool {
            assert!(s.key_cols.len() <= 6, "{s}");
            assert!(s.stored_columns().len() <= 16, "{s}");
        }
    }
}
