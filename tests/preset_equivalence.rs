//! Preset-equivalence suite for the strategy-trait redesign.
//!
//! The `TuningSession` presets (`Preset::{Dta, Dtac, DtacNone}`) are thin
//! veneers over the strategy objects, and `AdvisorOptions::{dta, dtac,
//! dtac_none}` are translated onto the same objects by
//! `StrategySet::from_options` — so both routes must produce **byte
//! identical** recommendations. This suite pins that on TPC-H and TPC-DS,
//! across two seeds and both `Parallelism::Serial` and
//! `Parallelism::Auto`.

use cadb::common::Parallelism;
use cadb::core::{Advisor, AdvisorOptions, Recommendation, StrategySet};
use cadb::datagen::{TpcdsGen, TpchGen};
use cadb::engine::lower::lower_statement;
use cadb::engine::{Database, Workload};
use cadb::{Preset, TuningSession};

const SCALE: f64 = 0.02;
const SEEDS: [u64; 2] = [11, 42];
const PARS: [Parallelism; 2] = [Parallelism::Serial, Parallelism::Auto];
/// A preset paired with the legacy `AdvisorOptions` constructor it must
/// reproduce byte-for-byte.
type PresetPair = (Preset, fn(f64) -> AdvisorOptions);
const PRESETS: [PresetPair; 3] = [
    (Preset::Dta, AdvisorOptions::dta),
    (Preset::Dtac, AdvisorOptions::dtac),
    (Preset::DtacNone, AdvisorOptions::dtac_none),
];

fn tpch() -> (Database, Workload) {
    let gen = TpchGen::new(SCALE);
    let db = gen.build().unwrap();
    let w = gen.workload(&db).unwrap();
    (db, w)
}

fn tpcds() -> (Database, Workload) {
    let db = TpcdsGen::new(SCALE).build().unwrap();
    let mut w = Workload::default();
    for sql in [
        "SELECT itemkey, SUM(qty) FROM store_sales \
         WHERE discount BETWEEN 2 AND 7 GROUP BY itemkey",
        "SELECT SUM(netpaid) FROM store_sales WHERE qty > 60",
        "SELECT soldkey, SUM(salesprice) FROM store_sales \
         WHERE listprice < 6000 GROUP BY soldkey",
    ] {
        w.push(lower_statement(&db, sql).unwrap(), 1.0);
    }
    (db, w)
}

fn assert_bits(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} != {b}");
}

fn assert_recommendations_identical(a: &Recommendation, b: &Recommendation, ctx: &str) {
    assert_bits(a.initial_cost, b.initial_cost, &format!("{ctx} initial"));
    assert_bits(a.final_cost, b.final_cost, &format!("{ctx} final"));
    assert_eq!(a.pool_size, b.pool_size, "{ctx} pool_size");
    let (sa, sb) = (a.configuration.structures(), b.configuration.structures());
    assert_eq!(sa.len(), sb.len(), "{ctx} configuration size");
    for (x, y) in sa.iter().zip(sb) {
        assert_eq!(x.spec, y.spec, "{ctx} structure spec");
        assert_bits(
            x.size.bytes,
            y.size.bytes,
            &format!("{ctx} {} bytes", x.spec),
        );
        assert_bits(
            x.size.compression_fraction,
            y.size.compression_fraction,
            &format!("{ctx} {} cf", x.spec),
        );
    }
    assert_bits(
        a.timings.estimation_cost_pages,
        b.timings.estimation_cost_pages,
        &format!("{ctx} estimation cost"),
    );
    assert_eq!(a.timings.sampled, b.timings.sampled, "{ctx} sampled");
    assert_eq!(a.timings.deduced, b.timings.deduced, "{ctx} deduced");
    // The machine-readable forms must agree on everything but wall-clock
    // timings (strip the timings object before comparing).
    let strip = |j: &str| j[..j.find("\"timings\"").unwrap()].to_string();
    assert_eq!(strip(&a.to_json()), strip(&b.to_json()), "{ctx} json");
}

fn preset_equivalence(db: &Database, w: &Workload, bench: &str) {
    let budget = 0.3 * db.base_data_bytes() as f64;
    for (preset, legacy_options) in PRESETS {
        for seed in SEEDS {
            for par in PARS {
                let ctx = format!("{bench} {preset:?} seed={seed} {par:?}");

                let mut opts = legacy_options(budget).with_parallelism(par);
                opts.seed = seed;
                let legacy = Advisor::new(db, opts).recommend(w).unwrap();

                let session = TuningSession::new(db)
                    .workload(w)
                    .budget(budget)
                    .preset(preset)
                    .seed(seed)
                    .parallelism(par)
                    .run()
                    .unwrap();

                assert_recommendations_identical(&session, &legacy, &ctx);
            }
        }
    }
}

#[test]
fn tpch_presets_identical_to_legacy_flag_path() {
    let (db, w) = tpch();
    preset_equivalence(&db, &w, "tpch");
}

#[test]
fn tpcds_presets_identical_to_legacy_flag_path() {
    let (db, w) = tpcds();
    preset_equivalence(&db, &w, "tpcds");
}

#[test]
fn explicit_strategy_set_matches_flag_translation() {
    // recommend_with(StrategySet::from_options(opts)) is what recommend()
    // does internally; handing the same set explicitly must change nothing.
    let (db, w) = tpch();
    let budget = 0.25 * db.base_data_bytes() as f64;
    let opts = AdvisorOptions::dtac(budget);
    let advisor = Advisor::new(&db, opts.clone());
    let implicit = advisor.recommend(&w).unwrap();
    let explicit = advisor
        .recommend_with(&w, &StrategySet::from_options(&opts))
        .unwrap();
    assert_recommendations_identical(&explicit, &implicit, "explicit set");
}
