//! Abstract syntax tree for the supported SQL subset.
//!
//! Every node implements [`std::fmt::Display`], rendering canonical SQL
//! that [`crate::parse_statement`] accepts back: for any statement the
//! parser produced, `parse(stmt.to_string())` returns an equal statement
//! (parse → display → parse is a fixpoint; the property tests in
//! `tests/parser_proptests.rs` pin this on generated ASTs). Identifiers
//! are emitted verbatim — the lexer lower-cases them, so ASTs that came
//! out of the parser round-trip exactly.

use std::fmt;

/// A literal value in SQL text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Decimal literal (kept as f64; the engine re-scales per column type).
    Float(f64),
    /// String literal — also used for dates ('2009-01-01'), which the
    /// engine recognizes when the column type is DATE.
    Str(String),
    /// NULL.
    Null,
}

/// Scalar expression (projection / aggregate argument).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified (`table.column`).
    Column {
        /// Optional table qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal.
    Lit(Literal),
    /// Binary arithmetic.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// One of `+ - * /`.
        op: ArithOp,
        /// Right operand.
        right: Box<Expr>,
    },
}

impl Expr {
    /// All column references in the expression, in occurrence order.
    pub fn columns(&self) -> Vec<(Option<&str>, &str)> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<(Option<&'a str>, &'a str)>) {
        match self {
            Expr::Column { table, name } => out.push((table.as_deref(), name)),
            Expr::Lit(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
        }
    }
}

/// Arithmetic operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `SUM`
    Sum,
    /// `COUNT`
    Count,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// Plain scalar expression.
    Expr(Expr),
    /// Aggregate over an expression; `COUNT(*)` has `arg == None`.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Argument; `None` only for `COUNT(*)`.
        arg: Option<Expr>,
    },
    /// `*`
    Wildcard,
}

/// Comparison operator in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One conjunct of a WHERE clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `col op literal`.
    Compare {
        /// Column side.
        column: Expr,
        /// Operator.
        op: CmpOp,
        /// Literal side.
        value: Literal,
    },
    /// `col BETWEEN lo AND hi` (inclusive).
    Between {
        /// Column side.
        column: Expr,
        /// Lower bound.
        lo: Literal,
        /// Upper bound.
        hi: Literal,
    },
    /// `col IN (v1, v2, …)`.
    InList {
        /// Column side.
        column: Expr,
        /// Allowed values.
        values: Vec<Literal>,
    },
    /// `col1 = col2` — a join predicate when the columns come from
    /// different tables.
    ColumnEq {
        /// Left column.
        left: Expr,
        /// Right column.
        right: Expr,
    },
}

/// An explicit `JOIN … ON a = b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Joined table name.
    pub table: String,
    /// Left side of the ON equality.
    pub on_left: Expr,
    /// Right side of the ON equality.
    pub on_right: Expr,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// FROM table.
    pub from: String,
    /// INNER JOINs, in syntactic order.
    pub joins: Vec<Join>,
    /// WHERE conjuncts (ANDed).
    pub where_clause: Vec<Condition>,
    /// GROUP BY columns.
    pub group_by: Vec<Expr>,
    /// ORDER BY columns.
    pub order_by: Vec<Expr>,
}

/// A column in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Type name as written (`int`, `decimal`, `date`, `char`, `varchar`).
    pub type_name: String,
    /// Type arguments (length / scale).
    pub type_args: Vec<i64>,
    /// Whether the column is nullable (default true unless NOT NULL).
    pub nullable: bool,
}

/// CREATE TABLE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTableStmt {
    /// Table name.
    pub name: String,
    /// Column specs.
    pub columns: Vec<ColumnSpec>,
    /// PRIMARY KEY column names.
    pub primary_key: Vec<String>,
}

/// INSERT statement (multi-row VALUES).
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Row literals.
    pub rows: Vec<Vec<Literal>>,
}

/// Any supported statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// SELECT.
    Select(SelectStmt),
    /// CREATE TABLE.
    CreateTable(CreateTableStmt),
    /// INSERT.
    Insert(InsertStmt),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            // Keep the decimal point so the literal lexes as a float again.
            Literal::Float(v) if v.fract() == 0.0 && v.is_finite() => write!(f, "{v:.1}"),
            Literal::Float(v) => write!(f, "{v}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Null => write!(f, "NULL"),
        }
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column {
                table: Some(t),
                name,
            } => write!(f, "{t}.{name}"),
            Expr::Column { table: None, name } => write!(f, "{name}"),
            Expr::Lit(l) => write!(f, "{l}"),
            // Always parenthesized, so the printed tree re-parses with the
            // same shape regardless of precedence.
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        })
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Expr(e) => write!(f, "{e}"),
            SelectItem::Agg { func, arg: Some(a) } => write!(f, "{func}({a})"),
            SelectItem::Agg { func, arg: None } => write!(f, "{func}(*)"),
            SelectItem::Wildcard => write!(f, "*"),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Compare { column, op, value } => write!(f, "{column} {op} {value}"),
            Condition::Between { column, lo, hi } => {
                write!(f, "{column} BETWEEN {lo} AND {hi}")
            }
            Condition::InList { column, values } => {
                write!(f, "{column} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Condition::ColumnEq { left, right } => write!(f, "{left} = {right}"),
        }
    }
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JOIN {} ON {} = {}",
            self.table, self.on_left, self.on_right
        )
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM {}", self.from)?;
        for j in &self.joins {
            write!(f, " {j}")?;
        }
        for (i, c) in self.where_clause.iter().enumerate() {
            write!(f, " {} {c}", if i == 0 { "WHERE" } else { "AND" })?;
        }
        for (i, g) in self.group_by.iter().enumerate() {
            write!(f, "{}{g}", if i == 0 { " GROUP BY " } else { ", " })?;
        }
        for (i, o) in self.order_by.iter().enumerate() {
            write!(f, "{}{o}", if i == 0 { " ORDER BY " } else { ", " })?;
        }
        Ok(())
    }
}

impl fmt::Display for CreateTableStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE TABLE {} (", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.type_name)?;
            if !c.type_args.is_empty() {
                write!(f, "(")?;
                for (j, a) in c.type_args.iter().enumerate() {
                    if j > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
            }
            if !c.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        if !self.primary_key.is_empty() {
            write!(f, ", PRIMARY KEY (")?;
            for (i, k) in self.primary_key.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{k}")?;
            }
            write!(f, ")")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for InsertStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {} VALUES ", self.table)?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::CreateTable(c) => write!(f, "{c}"),
            Statement::Insert(i) => write!(f, "{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_columns_collects_in_order() {
        let e = Expr::Binary {
            left: Box::new(Expr::Column {
                table: None,
                name: "price".into(),
            }),
            op: ArithOp::Mul,
            right: Box::new(Expr::Binary {
                left: Box::new(Expr::Lit(Literal::Int(1))),
                op: ArithOp::Sub,
                right: Box::new(Expr::Column {
                    table: Some("l".into()),
                    name: "discount".into(),
                }),
            }),
        };
        assert_eq!(e.columns(), vec![(None, "price"), (Some("l"), "discount")]);
    }
}
