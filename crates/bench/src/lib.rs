//! # cadb-bench
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation. The `repro` binary runs them and prints the same rows/series
//! the paper reports; `EXPERIMENTS.md` in the repository root records
//! paper-vs-measured values for each.
//!
//! Absolute numbers differ from the paper (our substrate is a miniature
//! in-memory engine, not SQL Server on a 2011 server); what must match is
//! the *shape*: who wins, by roughly what factor, where crossovers fall.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use report::Table;
