//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive-min, exclusive-max size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.uniform_usize(self.size.min, self.size.max_exclusive);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Length shrinks first (binary search toward the minimum size):
        // the minimal prefix, the half-way prefix, one element less.
        if value.len() > self.size.min {
            let min = self.size.min;
            let mid = min + (value.len() - min) / 2;
            for n in [min, mid, value.len() - 1] {
                if n < value.len() && !out.iter().any(|v: &Vec<S::Value>| v.len() == n) {
                    out.push(value[..n].to_vec());
                }
            }
        }
        // Then element-wise shrinks, earliest element first.
        for (i, elem) in value.iter().enumerate() {
            for cand in self.elem.shrink(elem) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}
