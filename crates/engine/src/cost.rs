//! The compression-aware cost model (paper Appendix A).
//!
//! Costs are abstract units (roughly "milliseconds"): sequential and random
//! page I/O plus per-tuple CPU. Compression enters in exactly the two places
//! the paper modified SQL Server:
//!
//! * **updates** (A.1): `CPUCost_update = Base + α · #tuples_written`,
//! * **reads** (A.2): `CPUCost_read = Base + β · #tuples_read · #columns_read`,
//!
//! while the I/O term shrinks automatically because compressed structures
//! have fewer pages. `α` and `β` per method live on
//! [`CompressionKind::alpha`]/[`beta`](CompressionKind::beta); the unit
//! scalars here calibrate them against the I/O units.

use cadb_compression::analyze::PAGE_PAYLOAD;
use cadb_compression::CompressionKind;

/// Tunable cost constants.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cost of reading one page sequentially.
    pub seq_page_io: f64,
    /// Cost of one random page access.
    pub rnd_page_io: f64,
    /// CPU cost of processing one tuple.
    pub cpu_per_tuple: f64,
    /// CPU cost of evaluating one predicate on one tuple.
    pub cpu_per_predicate: f64,
    /// Per-tuple·log2(n) factor for sorts.
    pub sort_factor: f64,
    /// Amortized I/O + page-split cost per row inserted into an index.
    pub insert_io_per_row: f64,
    /// Unit scale for the compression constant α (per tuple written).
    pub alpha_unit: f64,
    /// Unit scale for the decompression constant β (per tuple × column read).
    pub beta_unit: f64,
    /// Cost of the B+Tree descent for one seek (root-to-leaf random reads).
    pub seek_descent: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seq_page_io: 1.0,
            rnd_page_io: 4.0,
            cpu_per_tuple: 0.005,
            cpu_per_predicate: 0.001,
            sort_factor: 0.002,
            insert_io_per_row: 0.08,
            alpha_unit: 0.05,
            beta_unit: 0.01,
            seek_descent: 12.0,
        }
    }
}

impl CostModel {
    /// Decompression CPU for reading `tuples` rows touching `cols` columns
    /// of a structure compressed with `kind` (Appendix A.2). SQL Server
    /// decompresses only the used columns, hence the `cols` factor.
    pub fn decompress_cost(&self, kind: CompressionKind, tuples: f64, cols: f64) -> f64 {
        kind.beta() * self.beta_unit * tuples.max(0.0) * cols.max(0.0)
    }

    /// Compression CPU for writing `tuples` rows into a structure
    /// compressed with `kind` (Appendix A.1).
    pub fn compress_cost(&self, kind: CompressionKind, tuples: f64) -> f64 {
        kind.alpha() * self.alpha_unit * tuples.max(0.0)
    }

    /// Cost of a full sequential scan over `pages` pages yielding `tuples`
    /// rows, evaluating `n_preds` predicates per row.
    pub fn scan_cost(&self, pages: f64, tuples: f64, n_preds: usize) -> f64 {
        pages.max(1.0) * self.seq_page_io
            + tuples.max(0.0) * (self.cpu_per_tuple + n_preds as f64 * self.cpu_per_predicate)
    }

    /// Cost of sorting `tuples` rows.
    pub fn sort_cost(&self, tuples: f64) -> f64 {
        if tuples <= 1.0 {
            return 0.0;
        }
        self.sort_factor * tuples * tuples.log2()
    }

    /// Cost of `n` random row lookups into a base table (bookmark lookups
    /// of a non-covering index plan).
    pub fn lookup_cost(&self, n: f64) -> f64 {
        n.max(0.0) * self.rnd_page_io
    }

    /// Pages needed to store `bytes` of data.
    pub fn bytes_to_pages(&self, bytes: f64) -> f64 {
        (bytes / PAGE_PAYLOAD as f64).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompress_scales_with_cols_and_kind() {
        let m = CostModel::default();
        let row = m.decompress_cost(CompressionKind::Row, 1000.0, 4.0);
        let page = m.decompress_cost(CompressionKind::Page, 1000.0, 4.0);
        let none = m.decompress_cost(CompressionKind::None, 1000.0, 4.0);
        assert_eq!(none, 0.0);
        assert!(page > row);
        assert!(row > 0.0);
        assert!(
            m.decompress_cost(CompressionKind::Page, 1000.0, 8.0) > page,
            "more columns → more decompression"
        );
    }

    #[test]
    fn compress_cost_ordering() {
        let m = CostModel::default();
        assert_eq!(m.compress_cost(CompressionKind::None, 100.0), 0.0);
        assert!(
            m.compress_cost(CompressionKind::Page, 100.0)
                > m.compress_cost(CompressionKind::Row, 100.0)
        );
    }

    #[test]
    fn compression_can_win_or_lose_a_scan() {
        // The crux of the paper: fewer pages vs extra CPU. A wide scan
        // with CF=0.4 must win; reading few tuples from an already tiny
        // structure must not benefit.
        let m = CostModel::default();
        let tuples = 100_000.0;
        let cols = 4.0;
        let plain_pages = 1250.0;
        let plain = m.scan_cost(plain_pages, tuples, 1);
        let compressed = m.scan_cost(plain_pages * 0.4, tuples, 1)
            + m.decompress_cost(CompressionKind::Page, tuples, cols);
        assert!(compressed < plain, "{compressed} !< {plain}");

        // Tiny structure: I/O saving (a fraction of a page) can't pay for
        // decompressing the tuples.
        let small = m.scan_cost(1.0, 200.0, 1);
        let small_c =
            m.scan_cost(1.0, 200.0, 1) + m.decompress_cost(CompressionKind::Page, 200.0, cols);
        assert!(small_c > small);
    }

    #[test]
    fn sort_cost_monotone() {
        let m = CostModel::default();
        assert_eq!(m.sort_cost(1.0), 0.0);
        assert!(m.sort_cost(10_000.0) > m.sort_cost(1_000.0));
    }

    #[test]
    fn bytes_to_pages_floor_one() {
        let m = CostModel::default();
        assert_eq!(m.bytes_to_pages(10.0), 1.0);
        assert!(m.bytes_to_pages(1e6) > 100.0);
    }
}
