//! Per-column and per-table statistics.
//!
//! These are the statistics a query optimizer maintains for cardinality
//! estimation (§2.2), and which the paper's deduction methods consume:
//! per-column distinct counts (`|A|`, `|B|`) and multi-column distinct
//! counts (`|AB|`) feed the run-length approximation
//! `L(I_BA, A) = L(I_A, A)·|A| / |AB|` of §4.2.

use crate::histogram::Histogram;
use cadb_common::{ColumnId, DataType, Row, Value};
use std::collections::{HashMap, HashSet};

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Non-NULL rows.
    pub non_null: u64,
    /// NULL rows.
    pub nulls: u64,
    /// Exact distinct count of non-NULL values.
    pub distinct: u64,
    /// Minimum non-NULL value, if any row is non-NULL.
    pub min: Option<Value>,
    /// Maximum non-NULL value.
    pub max: Option<Value>,
    /// Mean *actual* byte width of values (strings unpadded), used by the
    /// compression-aware size accounting.
    pub avg_width: f64,
    /// Equi-depth histogram (absent for all-NULL columns).
    pub histogram: Option<Histogram>,
}

/// Statistics for a whole table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Total rows.
    pub n_rows: u64,
    /// Per-column stats, by ordinal.
    pub columns: Vec<ColumnStats>,
    /// Exact distinct counts for multi-column prefixes computed at collect
    /// time, keyed by the ordered column list.
    multi_distinct: HashMap<Vec<ColumnId>, u64>,
}

impl TableStats {
    /// Distinct count of a column combination.
    ///
    /// Single columns and combinations precomputed at collection time are
    /// exact; anything else falls back to the independence-based estimate
    /// `min(Π|Cᵢ|, n_rows)` — the same assumption the paper attributes to
    /// the query optimizer (Appendix B.3).
    pub fn distinct_count(&self, cols: &[ColumnId]) -> f64 {
        if cols.is_empty() {
            return 1.0;
        }
        if cols.len() == 1 {
            return self.columns[cols[0].raw()].distinct.max(1) as f64;
        }
        if let Some(d) = self.multi_distinct.get(cols) {
            return (*d).max(1) as f64;
        }
        let prod: f64 = cols
            .iter()
            .map(|c| self.columns[c.raw()].distinct.max(1) as f64)
            .fold(1.0, |a, b| a * b);
        prod.min(self.n_rows.max(1) as f64)
    }

    /// Whether an exact multi-column count was collected for `cols`.
    pub fn has_exact_distinct(&self, cols: &[ColumnId]) -> bool {
        cols.len() <= 1 || self.multi_distinct.contains_key(cols)
    }

    /// Fraction of NULLs in a column.
    pub fn null_fraction(&self, col: ColumnId) -> f64 {
        let c = &self.columns[col.raw()];
        let total = c.non_null + c.nulls;
        if total == 0 {
            0.0
        } else {
            c.nulls as f64 / total as f64
        }
    }
}

/// Number of histogram buckets collected per column.
pub const DEFAULT_BUCKETS: usize = 64;

/// Collect table statistics from rows.
///
/// `multi_sets` lists column combinations whose exact distinct counts should
/// be computed (the engine registers every index-key prefix it cares about).
pub fn collect_table_stats(
    rows: &[Row],
    dtypes: &[DataType],
    multi_sets: &[Vec<ColumnId>],
) -> TableStats {
    let n_cols = dtypes.len();
    let mut columns = Vec::with_capacity(n_cols);
    for (c, dtype) in dtypes.iter().enumerate() {
        let mut non_null = 0u64;
        let mut nulls = 0u64;
        let mut width_sum = 0u64;
        let mut distinct: HashSet<&Value> = HashSet::new();
        let mut min: Option<&Value> = None;
        let mut max: Option<&Value> = None;
        let mut vals: Vec<Value> = Vec::new();
        for r in rows {
            let v = &r.values[c];
            if v.is_null() {
                nulls += 1;
                continue;
            }
            non_null += 1;
            width_sum += match v {
                Value::Str(s) => s.len() as u64,
                Value::Int(_) => match dtype {
                    DataType::Date => 4,
                    _ => 8,
                },
                Value::Null => 0,
            };
            distinct.insert(v);
            if min.is_none_or(|m| v < m) {
                min = Some(v);
            }
            if max.is_none_or(|m| v > m) {
                max = Some(v);
            }
            vals.push(v.clone());
        }
        let histogram = Histogram::build(vals, *dtype, DEFAULT_BUCKETS);
        columns.push(ColumnStats {
            non_null,
            nulls,
            distinct: distinct.len() as u64,
            min: min.cloned(),
            max: max.cloned(),
            avg_width: if non_null == 0 {
                0.0
            } else {
                width_sum as f64 / non_null as f64
            },
            histogram,
        });
    }

    let mut multi_distinct = HashMap::new();
    for set in multi_sets {
        if set.len() < 2 {
            continue;
        }
        let mut seen: HashSet<Vec<&Value>> = HashSet::new();
        for r in rows {
            seen.insert(set.iter().map(|c| &r.values[c.raw()]).collect());
        }
        multi_distinct.insert(set.clone(), seen.len() as u64);
    }

    TableStats {
        n_rows: rows.len() as u64,
        columns,
        multi_distinct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        (0..100)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i % 10),
                    Value::Str(format!("s{}", i % 4)),
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                ])
            })
            .collect()
    }

    fn dtypes() -> Vec<DataType> {
        vec![
            DataType::Int,
            DataType::Varchar { max_len: 8 },
            DataType::Int,
        ]
    }

    #[test]
    fn per_column_basics() {
        let s = collect_table_stats(&rows(), &dtypes(), &[]);
        assert_eq!(s.n_rows, 100);
        assert_eq!(s.columns[0].distinct, 10);
        assert_eq!(s.columns[1].distinct, 4);
        assert_eq!(s.columns[2].nulls, 20);
        assert_eq!(s.columns[2].non_null, 80);
        assert_eq!(s.columns[0].min, Some(Value::Int(0)));
        assert_eq!(s.columns[0].max, Some(Value::Int(9)));
        assert!((s.null_fraction(ColumnId(2)) - 0.2).abs() < 1e-12);
        assert_eq!(s.null_fraction(ColumnId(0)), 0.0);
    }

    #[test]
    fn multi_column_distinct_exact_vs_estimated() {
        let combo = vec![ColumnId(0), ColumnId(1)];
        let s = collect_table_stats(&rows(), &dtypes(), std::slice::from_ref(&combo));
        // i%10 and i%4 jointly cycle with period lcm(10,4)=20.
        assert_eq!(s.distinct_count(&combo), 20.0);
        assert!(s.has_exact_distinct(&combo));

        // Unregistered combo → independence estimate min(10·4, 100) = 40.
        let other = vec![ColumnId(1), ColumnId(0)];
        assert!(!s.has_exact_distinct(&other));
        assert_eq!(s.distinct_count(&other), 40.0);
    }

    #[test]
    fn distinct_count_edges() {
        let s = collect_table_stats(&rows(), &dtypes(), &[]);
        assert_eq!(s.distinct_count(&[]), 1.0);
        assert_eq!(s.distinct_count(&[ColumnId(0)]), 10.0);
    }

    #[test]
    fn avg_width_of_strings_unpadded() {
        let s = collect_table_stats(&rows(), &dtypes(), &[]);
        assert!((s.columns[1].avg_width - 2.0).abs() < 1e-12);
        assert_eq!(s.columns[0].avg_width, 8.0);
    }

    #[test]
    fn all_null_column() {
        let rows: Vec<Row> = (0..5).map(|_| Row::new(vec![Value::Null])).collect();
        let s = collect_table_stats(&rows, &[DataType::Int], &[]);
        assert_eq!(s.columns[0].distinct, 0);
        assert!(s.columns[0].histogram.is_none());
        assert_eq!(s.distinct_count(&[ColumnId(0)]), 1.0); // clamped to 1
    }
}
