//! Partitioning policy and build options for sharded builds.

use cadb_common::par::Parallelism;
use cadb_common::{MemoryBudget, Row, Value};

pub use cadb_common::rows_footprint;

/// How rows are routed to shards before the per-shard build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Contiguous ranges of input positions. The only policy valid for
    /// heaps (`n_key_cols == 0`), where input order must be preserved.
    Range,
    /// A stable hash of the key-column values. Spreads skewed keys evenly;
    /// the merge re-establishes global key order.
    Hash,
}

/// Shard layout of a build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Number of shards (≥ 1; 1 degenerates to the monolithic build).
    pub shards: usize,
    /// Routing policy.
    pub partitioning: Partitioning,
}

impl ShardSpec {
    /// Range-partition into `shards` shards.
    pub fn range(shards: usize) -> Self {
        ShardSpec {
            shards: shards.max(1),
            partitioning: Partitioning::Range,
        }
    }

    /// Hash-partition into `shards` shards.
    pub fn hash(shards: usize) -> Self {
        ShardSpec {
            shards: shards.max(1),
            partitioning: Partitioning::Hash,
        }
    }
}

/// Knobs of a sharded build.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Worker-pool setting. The built bytes are identical for every mode.
    pub parallelism: Parallelism,
    /// Rows per leaf-packing stripe. The stripe grid — not the shard count
    /// — determines page boundaries, so two builds agree byte-for-byte iff
    /// they use the same `stripe_rows`.
    pub stripe_rows: usize,
    /// Byte meter (and optional hard limit) charged for build working sets
    /// and resident encoded pages.
    pub budget: MemoryBudget,
}

/// Default rows per stripe (matches the datagen chunk grid).
pub const DEFAULT_STRIPE_ROWS: usize = 4096;

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            parallelism: Parallelism::Auto,
            stripe_rows: DEFAULT_STRIPE_ROWS,
            budget: MemoryBudget::unlimited(),
        }
    }
}

impl BuildOptions {
    /// Replace the worker-pool setting.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// Replace the stripe size (clamped to ≥ 1).
    pub fn with_stripe_rows(mut self, rows: usize) -> Self {
        self.stripe_rows = rows.max(1);
        self
    }

    /// Replace the memory budget.
    pub fn with_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// Counters of one sharded build, surfaced in reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Shards the input was partitioned into.
    pub shards: usize,
    /// Leaf-packing stripes encoded.
    pub stripes: usize,
    /// Rows built.
    pub rows: usize,
    /// Peak bytes the build's budget metered (working sets + encoded
    /// pages resident at once).
    pub peak_bytes: usize,
}

impl BuildStats {
    /// View as named observability metrics; `peak_bytes` is a high-water
    /// mark, so builds publish it as a gauge rather than through these
    /// counter deltas.
    pub fn as_metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("shard.shards", self.shards as u64),
            ("shard.stripes", self.stripes as u64),
            ("shard.rows", self.rows as u64),
        ]
    }

    /// Stream these counters (and the peak-bytes gauge) to the installed
    /// recorder — called once per finished build.
    pub fn publish(&self) {
        cadb_common::obs::publish_counters(&self.as_metrics());
        cadb_common::obs::gauge_set("shard.build_peak_bytes", self.peak_bytes as f64);
    }
}

/// Stable FNV-1a hash of a row's leading `n_key_cols` values — the Hash
/// partitioning router. Independent of platform and shard count.
pub fn key_hash(row: &Row, n_key_cols: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for v in row.values.iter().take(n_key_cols) {
        match v {
            Value::Null => eat(0),
            Value::Int(i) => {
                eat(1);
                for b in i.to_le_bytes() {
                    eat(b);
                }
            }
            Value::Str(s) => {
                eat(2);
                for b in s.as_bytes() {
                    eat(*b);
                }
                eat(0xff);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_hash_is_stable_and_prefix_sensitive() {
        let a = Row::new(vec![Value::Int(7), Value::Str("x".into())]);
        let b = Row::new(vec![Value::Int(7), Value::Str("y".into())]);
        assert_eq!(key_hash(&a, 1), key_hash(&b, 1));
        assert_ne!(key_hash(&a, 2), key_hash(&b, 2));
        assert_ne!(key_hash(&a, 1), key_hash(&Row::new(vec![Value::Null]), 1));
    }

    #[test]
    fn footprint_counts_payloads() {
        let rows = vec![Row::new(vec![Value::Int(1), Value::Str("abcd".into())])];
        let f = rows_footprint(&rows);
        assert!(f >= 4 + 8, "{f}");
    }

    #[test]
    fn spec_clamps_to_one_shard() {
        assert_eq!(ShardSpec::range(0).shards, 1);
        assert_eq!(ShardSpec::hash(8).partitioning, Partitioning::Hash);
    }
}
