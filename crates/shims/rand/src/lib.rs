//! In-tree shim providing the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`]. The generator is splitmix64 — statistically solid
//! for data generation and sampling, deliberately not cryptographic.
//!
//! The build environment has no access to crates.io; this crate keeps the
//! workspace self-contained while preserving call-site compatibility so the
//! real `rand` can be dropped back in by editing one line of the workspace
//! manifest.

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator (the `Standard`
/// distribution of real rand, flattened into a trait).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as i128) + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((lo as i128) + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&a));
            let b = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&b));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let a: u64 = StdRng::seed_from_u64(9).gen();
        let b: u64 = StdRng::seed_from_u64(9).gen();
        assert_eq!(a, b);
    }
}
