//! The compression-aware physical design advisor (DTA / DTAc), §6.
//!
//! Pipeline (Figure 1/4): per-query candidate generation (with compressed
//! variants) → size estimation (the §5 framework) → candidate selection
//! (top-k or Skyline) → index merging → enumeration (greedy / density /
//! Backtracking) under the storage bound.
//!
//! The three variable stages — estimation, selection, enumeration — are
//! dispatched through the strategy traits of [`crate::strategy`]:
//! [`Advisor::recommend`] translates the legacy [`AdvisorOptions`] boolean
//! knobs into a [`StrategySet`] (so the `dta`/`dtac`/`dtac_none` presets
//! stay byte-identical), and [`Advisor::recommend_with`] accepts any
//! user-assembled set, making new selection/estimation/enumeration variants
//! a self-contained `impl` instead of another flag.

pub mod candidates;
pub mod enumerate;
pub mod merge;
pub mod skyline;

use crate::planner::PlannerOptions;
use crate::strategy::{AdvisorContext, EstimationContext, StrategySet};
use cadb_common::json::{JsonArray, JsonObject};
use cadb_common::{obs, CadbError, Result};
use cadb_engine::{
    Configuration, Database, IndexSpec, Parallelism, PhysicalStructure, WhatIfOptimizer, Workload,
};
use cadb_sampling::SampleManager;
use serde::Serialize;
use std::collections::HashMap;
use std::time::Instant;

/// Which structure classes the advisor may propose (Appendix D: "simple
/// indexes" vs "all features").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSet {
    /// Clustered + secondary indexes on tables only (Figures 12–15).
    Simple,
    /// Simple + partial indexes + MV indexes (Figures 16–17).
    All,
}

/// Advisor knobs. Defaults reproduce full DTAc.
#[derive(Debug, Clone)]
pub struct AdvisorOptions {
    /// Storage bound in bytes.
    pub storage_budget: f64,
    /// Consider compressed index variants at all (`false` = original DTA).
    pub compression: bool,
    /// Skyline candidate selection (§6.1) instead of best-per-query top-k.
    pub skyline: bool,
    /// Backtracking in greedy enumeration (§6.2, Figure 8).
    pub backtracking: bool,
    /// Density-based greedy (benefit/size) instead of plain benefit.
    pub density: bool,
    /// Top-k kept per query when Skyline is off.
    pub top_k: usize,
    /// Structure classes in play.
    pub features: FeatureSet,
    /// Index merging (§6.2 end / \[8\]).
    pub merging: bool,
    /// Size-estimation accuracy/fractions.
    pub estimation: PlannerOptions,
    /// RNG seed for sampling.
    pub seed: u64,
    /// Worker-pool size for the advisor's own stages (candidate costing
    /// sweeps in selection and enumeration). The size-estimation framework
    /// reads `estimation.parallelism`; [`Self::with_parallelism`] sets
    /// both knobs at once. The recommendation is identical for every
    /// setting — [`Parallelism::Serial`] is the escape hatch that keeps
    /// the whole run on the calling thread.
    pub parallelism: Parallelism,
}

impl AdvisorOptions {
    /// Full DTAc with a budget.
    pub fn dtac(storage_budget: f64) -> Self {
        AdvisorOptions {
            storage_budget,
            compression: true,
            skyline: true,
            backtracking: true,
            density: false,
            top_k: 2,
            features: FeatureSet::Simple,
            merging: true,
            estimation: PlannerOptions::default(),
            seed: 7,
            parallelism: Parallelism::Auto,
        }
    }

    /// The original DTA: no compressed variants, top-k selection, plain
    /// greedy enumeration.
    pub fn dta(storage_budget: f64) -> Self {
        AdvisorOptions {
            compression: false,
            skyline: false,
            backtracking: false,
            merging: true,
            ..AdvisorOptions::dtac(storage_budget)
        }
    }

    /// DTAc (None): compressed candidates but neither Skyline nor
    /// Backtracking — the ablation baseline of Figures 12–13.
    pub fn dtac_none(storage_budget: f64) -> Self {
        AdvisorOptions {
            skyline: false,
            backtracking: false,
            ..AdvisorOptions::dtac(storage_budget)
        }
    }

    /// Enable all feature classes.
    pub fn with_features(mut self, features: FeatureSet) -> Self {
        self.features = features;
        self
    }

    /// Set the worker-pool size for the whole pipeline (advisor stages and
    /// the size-estimation framework alike).
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self.estimation.parallelism = par;
        self
    }
}

/// Timing breakdown of one advisor run (drives Figure 11).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct AdvisorTimings {
    /// Candidate generation + what-if costing + enumeration ("Other").
    pub other_seconds: f64,
    /// Building/maintaining samples.
    pub sample_seconds: f64,
    /// Executing SampleCF / deductions ("X-Estimate").
    pub estimate_seconds: f64,
    /// Planned estimation cost in §5.1 page units.
    pub estimation_cost_pages: f64,
    /// Targets sampled / deduced by the size-estimation framework.
    pub sampled: usize,
    /// Deduced target count.
    pub deduced: usize,
}

/// The advisor's output.
#[derive(Debug, Clone, Serialize)]
pub struct Recommendation {
    /// Chosen configuration.
    pub configuration: Configuration,
    /// Estimated workload cost with no indexes (the baseline).
    pub initial_cost: f64,
    /// Estimated workload cost under the recommendation.
    pub final_cost: f64,
    /// Timing/cost breakdown.
    pub timings: AdvisorTimings,
    /// Candidate pool size after selection (for diagnostics).
    pub pool_size: usize,
}

impl Recommendation {
    /// The paper's "Improvement [%]" metric: estimated runtime improvement
    /// over the initial database.
    pub fn improvement_percent(&self) -> f64 {
        if self.initial_cost <= 0.0 {
            return 0.0;
        }
        100.0 * (self.initial_cost - self.final_cost) / self.initial_cost
    }

    /// Total estimated bytes of the recommended structures.
    pub fn total_bytes(&self) -> f64 {
        self.configuration.total_bytes()
    }

    /// Machine-readable JSON form of the recommendation (structures sorted
    /// as chosen, costs, timings) — what `repro --json` emits.
    pub fn to_json(&self) -> String {
        let mut structures = JsonArray::new();
        for s in self.configuration.structures() {
            structures.push_raw(&structure_json(s));
        }
        let timings = JsonObject::new()
            .num("other_seconds", self.timings.other_seconds)
            .num("sample_seconds", self.timings.sample_seconds)
            .num("estimate_seconds", self.timings.estimate_seconds)
            .num("estimation_cost_pages", self.timings.estimation_cost_pages)
            .int("sampled", self.timings.sampled as i64)
            .int("deduced", self.timings.deduced as i64)
            .finish();
        JsonObject::new()
            .raw("configuration", &structures.finish())
            .num("total_bytes", self.total_bytes())
            .num("initial_cost", self.initial_cost)
            .num("final_cost", self.final_cost)
            .num("improvement_percent", self.improvement_percent())
            .int("pool_size", self.pool_size as i64)
            .raw("timings", &timings)
            .finish()
    }
}

/// JSON form of one priced structure (shared with the estimation report).
pub(crate) fn structure_json(s: &PhysicalStructure) -> String {
    JsonObject::new()
        .str("spec", &s.spec.to_string())
        .int("table", s.spec.table.0 as i64)
        .bool("clustered", s.spec.clustered)
        .str("compression", &s.spec.compression.to_string())
        .num("bytes", s.size.bytes)
        .num("pages", s.size.pages)
        .num("rows", s.size.rows)
        .num("compression_fraction", s.size.compression_fraction)
        .finish()
}

/// The advisor.
///
/// ```
/// use cadb_core::{Advisor, AdvisorOptions};
///
/// let gen = cadb_datagen::TpchGen::new(0.005);
/// let db = gen.build().unwrap();
/// let workload = gen.workload(&db).unwrap();
/// let budget = 0.3 * db.base_data_bytes() as f64;
///
/// let rec = Advisor::new(&db, AdvisorOptions::dtac(budget))
///     .recommend(&workload)
///     .unwrap();
/// assert!(rec.total_bytes() <= budget);
/// assert!(rec.improvement_percent() >= 0.0);
/// ```
pub struct Advisor<'a> {
    db: &'a Database,
    options: AdvisorOptions,
}

impl<'a> Advisor<'a> {
    /// New advisor over a database.
    pub fn new(db: &'a Database, options: AdvisorOptions) -> Self {
        Advisor { db, options }
    }

    /// Options in use.
    pub fn options(&self) -> &AdvisorOptions {
        &self.options
    }

    /// Produce a recommendation for a workload under the storage bound.
    ///
    /// Translates the flag-style [`AdvisorOptions`] into a [`StrategySet`]
    /// and dispatches through [`Self::recommend_with`] — the presets and
    /// the trait path are literally the same code.
    pub fn recommend(&self, workload: &Workload) -> Result<Recommendation> {
        self.recommend_with(workload, &StrategySet::from_options(&self.options))
    }

    /// Produce a recommendation using an explicit [`StrategySet`] —
    /// the extension point for custom estimation/selection/enumeration
    /// strategies (see [`crate::strategy`]).
    ///
    /// Non-strategy knobs (budget, feature classes, merging, seed,
    /// parallelism) still come from [`AdvisorOptions`]; the `skyline` /
    /// `backtracking` / `density` / `top_k` / `estimation.use_deduction`
    /// flags are ignored in favour of `strategies`.
    pub fn recommend_with(
        &self,
        workload: &Workload,
        strategies: &StrategySet,
    ) -> Result<Recommendation> {
        let _span = obs::span("advise");
        let opt = WhatIfOptimizer::new(self.db).with_parallelism(self.options.parallelism);
        let manager = SampleManager::new(self.db, self.options.seed);
        let t_start = Instant::now();

        // 1. Candidate generation (per query, incl. compressed variants).
        let mut pool = {
            let _s = obs::span("advise.candidates");
            candidates::generate_candidates(&opt, workload, &self.options)
        };

        // 2. Index merging over the raw pool.
        if self.options.merging {
            let _s = obs::span("advise.merge");
            merge::add_merged_candidates(&opt, workload, &mut pool, &self.options);
        }
        obs::counter_add("advise.pool_candidates", pool.len() as u64);

        // 3. Size estimation: uncompressed sizes from statistics;
        //    compressed sizes through the estimation strategy (the §5
        //    framework for the built-in estimators).
        let compressed_targets: Vec<IndexSpec> = pool
            .iter()
            .filter(|s| s.compression.is_compressed())
            .cloned()
            .collect();
        let t_est = Instant::now();
        let ectx = EstimationContext {
            opt: &opt,
            manager: &manager,
        };
        let report = {
            let _s = obs::span("advise.estimate_sizes");
            strategies
                .estimator
                .estimate_sizes(&ectx, &compressed_targets, &[])?
        };
        let estimate_seconds = t_est.elapsed().as_secs_f64();
        obs::counter_add("advise.sampled_nodes", report.sampled as u64);
        obs::counter_add("advise.deduced_nodes", report.deduced as u64);

        let mut priced: Vec<PhysicalStructure> = Vec::with_capacity(pool.len());
        for spec in pool {
            let size = if spec.compression.is_compressed() {
                // Every compressed candidate was handed to the estimator;
                // a missing estimate means the strategy broke its contract
                // (pricing the candidate at its uncompressed size would
                // silently distort selection and budget packing).
                match report.estimates.get(&spec) {
                    Some(s) => *s,
                    None => {
                        return Err(CadbError::InvalidArgument(format!(
                            "size estimator '{}' returned no estimate for \
                             compressed target {spec}",
                            strategies.estimator.name()
                        )))
                    }
                }
            } else {
                // Stored size, not row footprint: the columnar leaf layout
                // is cheaper than the footprint even without compression.
                opt.estimate_stored_size(&spec)
            };
            priced.push(PhysicalStructure { spec, size });
        }

        let ctx = AdvisorContext {
            opt: &opt,
            storage_budget: self.options.storage_budget,
        };

        // 4. Candidate selection: per query, keep the strategy's choice of
        //    (size, cost) single-structure configurations.
        let selected = {
            let _s = obs::span("advise.selection");
            strategies.selection.select(&ctx, workload, &priced)?
        };
        let pool_size = selected.len();
        obs::counter_add("advise.selected_candidates", pool_size as u64);

        // 5. Enumeration under the budget.
        let initial_cost = opt.workload_cost(workload, &Configuration::empty());
        let configuration = {
            let _s = obs::span("advise.enumerate");
            strategies
                .enumeration
                .enumerate(&ctx, workload, &selected)?
        };
        let final_cost = opt.workload_cost(workload, &configuration);
        obs::counter_add("advise.chosen_structures", configuration.len() as u64);

        let total_seconds = t_start.elapsed().as_secs_f64();
        let timings = AdvisorTimings {
            other_seconds: (total_seconds - estimate_seconds).max(0.0),
            sample_seconds: (estimate_seconds - report.samplecf_seconds).max(0.0),
            estimate_seconds: report.samplecf_seconds,
            estimation_cost_pages: report.planned_cost,
            sampled: report.sampled,
            deduced: report.deduced,
        };
        Ok(Recommendation {
            configuration,
            initial_cost,
            final_cost,
            timings,
            pool_size,
        })
    }
}

/// Deduplicate a pool of specs preserving first occurrence.
pub(crate) fn dedup_pool(pool: &mut Vec<IndexSpec>) {
    let mut seen: HashMap<IndexSpec, ()> = HashMap::new();
    pool.retain(|s| seen.insert(s.clone(), ()).is_none());
}
