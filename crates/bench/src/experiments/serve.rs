//! `serve` — the write-path experiment: commit the workload's
//! INSERT/UPDATE statements through the snapshot-isolated store's WAL'd
//! write path (with incremental secondary-index and MV maintenance), then
//! replay the WAL into a fresh store and verify the recovered state
//! byte-for-byte against the live one.
//!
//! This is the durability half of the actuals loop: `exec` and `plan`
//! measure the read side (query costs, access paths), `serve` measures the
//! write side — what maintaining the recommended structures *actually*
//! costs per statement, next to the what-if estimate the advisor priced
//! the configuration with — and proves the measured state survives a
//! crash.

use crate::report::Table;
use cadb_common::json::{JsonArray, JsonObject};
use cadb_common::obs::{self, HistogramSummary, TraceRecorder};
use cadb_common::Parallelism;
use cadb_core::ErrorModel;
use cadb_engine::{Configuration, CostModel, Database, WhatIfOptimizer, Workload};
use cadb_exec::{MaterializedConfig, ShardedStore, Store, WriteKind};
use cadb_shard::ShardSpec;
use std::sync::Arc;
use std::time::Instant;

use super::obs::write_burst;
use super::plan::{dtac_config, mv_rich_config};

/// Seed for the synthetic rows the write statements commit (kept distinct
/// from the advisor's sampling seed so the two never alias).
const SERVE_SEED: u64 = 0xCADB;

/// The outcome of serving one dataset × configuration: per-statement write
/// actuals plus the recovery verification verdict.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Per-write actuals: `(statement_index, kind, n_rows, estimated,
    /// measured, mv_share, wal_bytes)`.
    pub writes: Vec<(usize, WriteKind, u64, f64, f64, f64, u64)>,
    /// Committed watermark LSN.
    pub watermark: u64,
    /// WAL bytes the run appended.
    pub wal_bytes: usize,
    /// Measured maintenance cost summed over all commits.
    pub measured_write_cost: f64,
    /// The MV-maintenance share of it.
    pub measured_mv_cost: f64,
    /// WAL frames recovery replayed.
    pub frames_replayed: usize,
    /// Whether recovered state digest == live state digest AND the
    /// recovered checkpoint is bit-identical to the live one.
    pub recovery_verified: bool,
}

/// Serve the workload's writes under a configuration and verify recovery.
pub fn serve_measure(db: &Database, w: &Workload, cfg: &Configuration) -> ServeOutcome {
    let mat = MaterializedConfig::build(db, cfg).expect("materialize config");
    let opt = WhatIfOptimizer::new(db);
    let store = Store::open(db, &mat, CostModel::default());
    let actuals = store
        .apply_workload(w, SERVE_SEED, Parallelism::Auto)
        .expect("serve workload");
    let writes = actuals
        .iter()
        .map(|a| {
            let (stmt, _) = &w.statements[a.statement_index];
            (
                a.statement_index,
                a.kind,
                a.n_rows,
                opt.statement_cost(stmt, cfg),
                a.measured_cost,
                a.measured_mv_cost,
                a.counters.wal_bytes,
            )
        })
        .collect();
    let totals = store.totals();
    let live_digest = store.state_digest().expect("state digest");
    // WAL snapshot before checkpointing, so live and recovered stores
    // checkpoint from the same LSN and the artifacts are comparable.
    let wal = store.wal_bytes();
    let live_checkpoint = store.checkpoint().expect("checkpoint").digest();
    let (recovered, recovery) =
        Store::recover(db, &mat, CostModel::default(), &wal).expect("recovery");
    let recovered_digest = recovered.state_digest().expect("recovered digest");
    let recovered_checkpoint = recovered
        .checkpoint()
        .expect("recovered checkpoint")
        .digest();
    ServeOutcome {
        writes,
        watermark: store.watermark(),
        wal_bytes: wal.len(),
        measured_write_cost: totals.measured_cost,
        measured_mv_cost: totals.measured_mv_cost,
        frames_replayed: recovery.frames_applied,
        recovery_verified: recovered_digest == live_digest
            && recovered_checkpoint == live_checkpoint
            && recovery.truncated_bytes == 0
            && recovery.duplicates_skipped == 0,
    }
}

/// Per-statement write-cost table for one dataset × configuration.
pub fn serve_table(name: &str, variant: &str, out: &ServeOutcome) -> Table {
    let mut t = Table::new(
        format!("serve: {name} measured write costs ({variant})"),
        &[
            "stmt", "kind", "rows", "est cost", "measured", "est/meas", "mv share", "wal B",
        ],
    );
    for (idx, kind, n_rows, est, meas, mv, wal) in &out.writes {
        let kind = match kind {
            WriteKind::Insert => "INSERT",
            WriteKind::Update => "UPDATE",
            WriteKind::Delete => "DELETE",
        };
        let ratio = if *meas > 0.0 { est / meas } else { 1.0 };
        t.row(vec![
            format!("{idx}"),
            kind.to_string(),
            format!("{n_rows}"),
            format!("{est:.1}"),
            format!("{meas:.1}"),
            format!("{ratio:.2}"),
            format!("{mv:.1}"),
            format!("{wal}"),
        ]);
    }
    let (bias, n) = ErrorModel::maintenance_bias(
        &out.writes
            .iter()
            .map(|(_, _, _, est, meas, _, _)| (*est, *meas))
            .collect::<Vec<_>>(),
    );
    t.row(vec![
        format!(
            "total: measured {:.1} (mv {:.1}), geomean est/meas {bias:.2} over {n} writes",
            out.measured_write_cost, out.measured_mv_cost
        ),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t.row(vec![
        format!(
            "recovery: {} frames replayed to LSN {}, {} WAL bytes — {}",
            out.frames_replayed,
            out.watermark,
            out.wal_bytes,
            if out.recovery_verified {
                "state + checkpoint bit-identical"
            } else {
                "MISMATCH"
            }
        ),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t
}

/// Machine-readable form of the serve experiment.
pub fn serve_json(datasets: &[(&str, &Database, &Workload)], scale: f64) -> String {
    let mut out_datasets = JsonArray::new();
    for (name, db, w) in datasets {
        let mut variants = JsonArray::new();
        for (variant, cfg) in [
            ("dtac", dtac_config(db, w)),
            ("mv-rich", mv_rich_config(db, w)),
        ] {
            let out = serve_measure(db, w, &cfg);
            let mut writes = JsonArray::new();
            for (idx, kind, n_rows, est, meas, mv, wal) in &out.writes {
                writes.push_raw(
                    &JsonObject::new()
                        .int("statement_index", *idx as i64)
                        .str(
                            "kind",
                            match kind {
                                WriteKind::Insert => "insert",
                                WriteKind::Update => "update",
                                WriteKind::Delete => "delete",
                            },
                        )
                        .int("n_rows", *n_rows as i64)
                        .num("estimated_cost", *est)
                        .num("measured_cost", *meas)
                        .num("measured_mv_cost", *mv)
                        .int("wal_bytes", *wal as i64)
                        .finish(),
                );
            }
            variants.push_raw(
                &JsonObject::new()
                    .str("variant", variant)
                    .raw("writes", &writes.finish())
                    .num("measured_write_cost", out.measured_write_cost)
                    .num("measured_mv_cost", out.measured_mv_cost)
                    .int("watermark", out.watermark as i64)
                    .int("wal_bytes", out.wal_bytes as i64)
                    .int("frames_replayed", out.frames_replayed as i64)
                    .bool("recovery_verified", out.recovery_verified)
                    .finish(),
            );
        }
        out_datasets.push_raw(
            &JsonObject::new()
                .str("dataset", name)
                .raw("variants", &variants.finish())
                .finish(),
        );
    }
    JsonObject::new()
        .str("experiment", "serve")
        .num("scale", scale)
        .raw("datasets", &out_datasets.finish())
        .finish()
}

/// One cell of the sharded-serve sweep: a [`write_burst`] committed
/// through `shards` per-shard WAL streams under the global commit order
/// (`shards == 0` marks the monolithic single-log baseline).
#[derive(Debug, Clone)]
pub struct ShardedServePoint {
    /// Shard count; `0` = the monolithic [`Store`].
    pub shards: usize,
    /// Statements committed.
    pub commits: u64,
    /// Wall-clock of the whole burst, milliseconds.
    pub wall_ms: f64,
    /// Committed statements per second.
    pub commits_per_sec: f64,
    /// Recorded `store.group_commit_ns` distribution.
    pub latency: HistogramSummary,
    /// Total log-set bytes: the single WAL, or order log + all shard
    /// segments.
    pub wal_bytes: usize,
    /// Order-insensitive digest of the committed state — equal in every
    /// cell by the sharded-store equivalence contract.
    pub state_digest: u64,
    /// Whether replaying the cell's log set reproduced the live digest
    /// with nothing discarded.
    pub recovery_verified: bool,
}

/// Batch size the sharded-serve sweep group-commits with; large enough
/// that the order record amortizes over several statements per sync.
const SHARDED_SERVE_BATCH: usize = 8;

/// Sweep shard counts over a [`write_burst`]: commit the same statements
/// through the monolithic store and through hash-sharded stores, reading
/// group-commit latency from the installed recorder and verifying each
/// cell's recovery. Panics if any cell's committed state diverges — the
/// sweep doubles as the sharded-equivalence check at bench scale.
pub fn sharded_serve_curve(
    db: &Database,
    cfg: &Configuration,
    shard_counts: &[usize],
) -> Vec<ShardedServePoint> {
    let w = write_burst(db);
    let mat = MaterializedConfig::build(db, cfg).expect("materialize config");
    let mut out = Vec::new();
    // Monolithic baseline: same burst, same batch size, one WAL.
    {
        let rec = Arc::new(TraceRecorder::new());
        let store = Store::open(db, &mat, CostModel::default());
        let guard = obs::install(rec.clone());
        let t0 = Instant::now();
        store
            .apply_workload_batched(&w, SERVE_SEED, Parallelism::Auto, SHARDED_SERVE_BATCH)
            .expect("serve burst");
        let wall = t0.elapsed();
        drop(guard);
        let report = rec.report();
        let wal = store.wal_bytes();
        let digest = store.state_digest().expect("state digest");
        let (recovered, rep) =
            Store::recover(db, &mat, CostModel::default(), &wal).expect("recovery");
        out.push(ShardedServePoint {
            shards: 0,
            commits: report.counter("store.commits").unwrap_or(0),
            wall_ms: wall.as_secs_f64() * 1e3,
            commits_per_sec: report.counter("store.commits").unwrap_or(0) as f64
                / wall.as_secs_f64().max(1e-9),
            latency: rec
                .histogram("store.group_commit_ns")
                .expect("group-commit latency recorded"),
            wal_bytes: wal.len(),
            state_digest: digest,
            recovery_verified: recovered.state_digest().expect("recovered digest") == digest
                && rep.truncated_bytes == 0
                && rep.duplicates_skipped == 0,
        });
    }
    for &n in shard_counts {
        let spec = ShardSpec::hash(n);
        let rec = Arc::new(TraceRecorder::new());
        let store =
            ShardedStore::open(db, &mat, CostModel::default(), spec).expect("open sharded store");
        let guard = obs::install(rec.clone());
        let t0 = Instant::now();
        store
            .apply_workload_batched(&w, SERVE_SEED, Parallelism::Auto, SHARDED_SERVE_BATCH)
            .expect("serve burst sharded");
        let wall = t0.elapsed();
        drop(guard);
        let report = rec.report();
        let order = store.order_bytes();
        let shard_logs = store.all_shard_wal_bytes();
        let digest = store.state_digest().expect("state digest");
        let (recovered, rep) =
            ShardedStore::recover(db, &mat, CostModel::default(), spec, &order, &shard_logs)
                .expect("sharded recovery");
        out.push(ShardedServePoint {
            shards: n,
            commits: report.counter("store.commits").unwrap_or(0),
            wall_ms: wall.as_secs_f64() * 1e3,
            commits_per_sec: report.counter("store.commits").unwrap_or(0) as f64
                / wall.as_secs_f64().max(1e-9),
            latency: rec
                .histogram("store.group_commit_ns")
                .expect("group-commit latency recorded"),
            wal_bytes: order.len() + shard_logs.iter().map(Vec::len).sum::<usize>(),
            state_digest: digest,
            recovery_verified: recovered.state_digest().expect("recovered digest") == digest
                && rep.commits_discarded == 0,
        });
    }
    let d0 = out[0].state_digest;
    assert!(
        out.iter().all(|p| p.state_digest == d0),
        "sharding changed the committed state"
    );
    out
}

/// The sharded-serve sweep as a table: throughput and group-commit
/// latency vs shard count, with the monolithic baseline first.
pub fn sharded_serve_table(name: &str, points: &[ShardedServePoint]) -> Table {
    let mut t = Table::new(
        format!("serve: {name} commit throughput/latency vs shard count"),
        &[
            "shards",
            "commits",
            "wall ms",
            "commits/s",
            "p50 µs",
            "p95 µs",
            "log-set B",
            "recovered",
        ],
    );
    for p in points {
        t.row(vec![
            if p.shards == 0 {
                "mono".to_string()
            } else {
                format!("{}", p.shards)
            },
            format!("{}", p.commits),
            format!("{:.1}", p.wall_ms),
            format!("{:.0}", p.commits_per_sec),
            format!("{:.1}", p.latency.p50 / 1e3),
            format!("{:.1}", p.latency.p95 / 1e3),
            format!("{}", p.wal_bytes),
            if p.recovery_verified {
                "ok"
            } else {
                "MISMATCH"
            }
            .to_string(),
        ]);
    }
    t.row(vec![
        format!(
            "state digest identical across all {} cells: {:#x}",
            points.len(),
            points.first().map(|p| p.state_digest).unwrap_or(0)
        ),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t
}

/// Differential check behind the `serve` smoke test: the measured write
/// totals must be bitwise identical under serial and pooled execution (the
/// store's determinism contract), and both runs must recover.
pub fn serve_parallelism_differential(db: &Database, w: &Workload, cfg: &Configuration) -> bool {
    let mat = MaterializedConfig::build(db, cfg).expect("materialize config");
    let mut digests = Vec::new();
    let mut per_stmt: Vec<Vec<u64>> = Vec::new();
    for par in [Parallelism::Serial, Parallelism::Auto] {
        let store = Store::open(db, &mat, CostModel::default());
        let actuals = store
            .apply_workload(w, SERVE_SEED, par)
            .expect("serve workload");
        let mut costs: Vec<(usize, u64)> = actuals
            .iter()
            .map(|a| (a.statement_index, a.measured_cost.to_bits()))
            .collect();
        costs.sort_unstable();
        per_stmt.push(costs.into_iter().map(|(_, c)| c).collect());
        digests.push(store.state_digest().expect("digest"));
    }
    digests[0] == digests[1] && per_stmt[0] == per_stmt[1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::plan::mv_rich_config;
    use cadb_exec::MeasuredRun;

    #[test]
    fn serve_commits_measures_and_recovers() {
        let gen = cadb_datagen::TpchGen::new(0.01);
        let db = gen.build().unwrap();
        let w = gen.workload(&db).unwrap();
        let cfg = mv_rich_config(&db, &w);
        let out = serve_measure(&db, &w, &cfg);
        assert!(!out.writes.is_empty(), "TPC-H workload has writes");
        assert!(out.measured_write_cost > 0.0);
        assert!(out.measured_mv_cost > 0.0, "mv-rich config has MVs");
        assert!(out.recovery_verified, "recovery must be bit-identical");
        assert_eq!(out.frames_replayed, out.writes.len());
        let table = serve_table("tpch", "mv-rich", &out);
        assert!(table.render().contains("bit-identical"));
        assert!(serve_parallelism_differential(&db, &w, &cfg));
        let json = serve_json(&[("tpch", &db, &w)], 0.01);
        assert!(json.contains("\"experiment\":\"serve\""));
        assert!(json.contains("\"recovery_verified\":true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn sharded_serve_sweep_is_equivalent_and_recovers() {
        let gen = cadb_datagen::TpchGen::new(0.01);
        let db = gen.build().unwrap();
        let w = gen.workload(&db).unwrap();
        let cfg = mv_rich_config(&db, &w);
        let points = sharded_serve_curve(&db, &cfg, &[1, 4]);
        assert_eq!(points.len(), 3); // mono + 2 shard counts
        assert!(points.iter().all(|p| p.recovery_verified));
        assert!(points.iter().all(|p| p.commits == points[0].commits));
        // The sweep itself asserts digest identity; the table shows it.
        let table = sharded_serve_table("tpch", &points);
        let rendered = table.render();
        assert!(rendered.contains("mono"));
        assert!(rendered.contains("state digest identical"));
    }

    /// The measured MV-maintenance number `MeasuredRun` now reports must
    /// agree with what the store actually charged for the same workload —
    /// the report is a *view* of the served run, not a separate model.
    #[test]
    fn measured_report_mv_cost_matches_served_totals() {
        let gen = cadb_datagen::TpchGen::new(0.01);
        let db = gen.build().unwrap();
        let w = gen.workload(&db).unwrap();
        let cfg = mv_rich_config(&db, &w);
        let report = MeasuredRun::new(&db, &w).execute(&cfg).unwrap();
        let measured = report.mv_maintenance_cost.expect("workload writes");
        let expected: f64 = report
            .writes
            .iter()
            .map(|wr| wr.weight * wr.measured_mv_cost)
            .sum();
        assert_eq!(measured.to_bits(), expected.to_bits());
        let whatif = report.mv_maintenance_whatif.expect("workload inserts");
        assert!(whatif.is_finite());
    }
}
