//! Per-page prefix suppression.
//!
//! SQL Server PAGE compression stores, per column per page, an *anchor*
//! value; each value then records how many leading bytes it shares with the
//! anchor plus its remaining suffix (§2.1). We pick the median value of the
//! page as the anchor — on sorted index pages values cluster, so the median
//! maximizes total shared prefix without an O(n²) search.
//!
//! Block layout:
//! ```text
//! [anchor_len: u16][anchor bytes]
//! [n: u16]
//! n × ( [match_len: u8][suffix_len: u16][suffix bytes] )
//! ```

use cadb_common::{CadbError, Result};

/// Pick the anchor value for a page: the median by byte-string order.
/// On sorted index pages values cluster, so the median maximizes total
/// shared prefix without an O(n²) search.
pub fn choose_anchor(values: &[Vec<u8>]) -> Vec<u8> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].cmp(&values[b]));
    values[idx[idx.len() / 2]].clone()
}

/// Prefix-encode a single value against an anchor:
/// `[match_len: u8][suffix bytes]`.
pub fn encode_one(anchor: &[u8], v: &[u8]) -> Vec<u8> {
    let m = common_prefix_len(anchor, v).min(255);
    let mut out = Vec::with_capacity(1 + v.len() - m);
    out.push(m as u8);
    out.extend_from_slice(&v[m..]);
    out
}

/// Invert [`encode_one`].
pub fn decode_one(anchor: &[u8], enc: &[u8]) -> Result<Vec<u8>> {
    let m = *enc
        .first()
        .ok_or_else(|| CadbError::Storage("empty prefix-encoded value".into()))?
        as usize;
    if m > anchor.len() {
        return Err(CadbError::Storage("prefix match exceeds anchor".into()));
    }
    let mut v = Vec::with_capacity(m + enc.len() - 1);
    v.extend_from_slice(&anchor[..m]);
    v.extend_from_slice(&enc[1..]);
    Ok(v)
}

/// Encode a set of byte-strings with prefix suppression against an anchor.
pub fn encode(values: &[Vec<u8>]) -> Vec<u8> {
    let anchor = choose_anchor(values);
    let mut out = Vec::with_capacity(anchor.len() + 4 + values.len() * 3);
    out.extend_from_slice(&(anchor.len() as u16).to_le_bytes());
    out.extend_from_slice(&anchor);
    out.extend_from_slice(&(values.len() as u16).to_le_bytes());
    for v in values {
        let enc = encode_one(&anchor, v);
        let suffix_len = enc.len() - 1;
        out.push(enc[0]);
        out.extend_from_slice(&(suffix_len as u16).to_le_bytes());
        out.extend_from_slice(&enc[1..]);
    }
    out
}

/// Decode a prefix-suppressed block back into the original byte-strings.
pub fn decode(block: &[u8]) -> Result<Vec<Vec<u8>>> {
    let mut pos = 0usize;
    let anchor_len = read_u16(block, &mut pos)? as usize;
    let anchor = read_slice(block, &mut pos, anchor_len)?.to_vec();
    let n = read_u16(block, &mut pos)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let m = *block
            .get(pos)
            .ok_or_else(|| CadbError::Storage("prefix block truncated".into()))?
            as usize;
        pos += 1;
        let suffix_len = read_u16(block, &mut pos)? as usize;
        let suffix = read_slice(block, &mut pos, suffix_len)?;
        if m > anchor.len() {
            return Err(CadbError::Storage("prefix match exceeds anchor".into()));
        }
        let mut v = Vec::with_capacity(m + suffix.len());
        v.extend_from_slice(&anchor[..m]);
        v.extend_from_slice(suffix);
        out.push(v);
    }
    Ok(out)
}

fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

pub(crate) fn read_u16(block: &[u8], pos: &mut usize) -> Result<u16> {
    let b = block
        .get(*pos..*pos + 2)
        .ok_or_else(|| CadbError::Storage("block truncated reading u16".into()))?;
    *pos += 2;
    Ok(u16::from_le_bytes([b[0], b[1]]))
}

pub(crate) fn read_u32(block: &[u8], pos: &mut usize) -> Result<u32> {
    let b = block
        .get(*pos..*pos + 4)
        .ok_or_else(|| CadbError::Storage("block truncated reading u32".into()))?;
    *pos += 4;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

pub(crate) fn read_slice<'a>(block: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8]> {
    let s = block
        .get(*pos..*pos + len)
        .ok_or_else(|| CadbError::Storage("block truncated reading slice".into()))?;
    *pos += len;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_shared_prefixes() {
        let vals: Vec<Vec<u8>> = ["aaabc", "aaacd", "aaade", "aaabc"]
            .iter()
            .map(|s| s.as_bytes().to_vec())
            .collect();
        let block = encode(&vals);
        assert_eq!(decode(&block).unwrap(), vals);
        // The paper's example: {aaabc, aaacd, aaade} share "aaa"; with the
        // anchor we should beat the plain concatenation (20 bytes payload).
        let plain: usize = vals.iter().map(|v| v.len() + 3).sum::<usize>() + 4;
        assert!(block.len() < plain);
    }

    #[test]
    fn empty_input() {
        let block = encode(&[]);
        assert!(decode(&block).unwrap().is_empty());
    }

    #[test]
    fn disjoint_values_still_round_trip() {
        let vals: Vec<Vec<u8>> = vec![b"xyz".to_vec(), b"abc".to_vec(), vec![], b"q".to_vec()];
        let block = encode(&vals);
        assert_eq!(decode(&block).unwrap(), vals);
    }

    #[test]
    fn truncated_block_errors() {
        let vals = vec![b"hello".to_vec()];
        let block = encode(&vals);
        for cut in 0..block.len() {
            assert!(decode(&block[..cut]).is_err(), "cut at {cut}");
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(vals in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 0..50)) {
            let block = encode(&vals);
            prop_assert_eq!(decode(&block).unwrap(), vals);
        }

        #[test]
        fn prop_identical_values_compress(v in proptest::collection::vec(any::<u8>(), 8..32),
                                          n in 4usize..40) {
            let vals: Vec<Vec<u8>> = (0..n).map(|_| v.clone()).collect();
            let block = encode(&vals);
            let plain: usize = vals.iter().map(|x| x.len()).sum();
            // All-identical values: every value collapses to a match against
            // the anchor, so the block must be far below plain payload.
            prop_assert!(block.len() < plain / 2 + v.len() + 8);
        }
    }
}
