//! `shard` — the out-of-core sharded data path, end to end: stream-generate
//! tables in fixed-grid chunks (never holding a full table of raw rows),
//! build partitioned physical structures under a memory budget, and verify
//! the two invariances the subsystem promises:
//!
//! 1. **Datagen shard invariance** — generating a table in 1, 2 or 8 shard
//!    ranges yields byte-identical rows, because every chunk's RNG is
//!    seeded from `(seed, table, global row range)`, not from the shard id.
//! 2. **Build shard invariance** — a `ShardedIndex` built with any shard
//!    count, partitioning policy and parallelism mode produces the same
//!    physical bytes, because page boundaries come from the stripe grid and
//!    the merge re-establishes one global total order.
//!
//! The table reports peak metered bytes next to the raw table footprint —
//! the working-set reduction that makes `--scale 1` runs fit a budget.

use crate::report::Table;
use cadb_common::{rows_footprint, MemoryBudget, Parallelism, Row};
use cadb_compression::CompressionKind;
use cadb_datagen::{shard_ranges, TpchGen};
use cadb_engine::Database;
use cadb_shard::{BuildOptions, Partitioning, ShardSpec, ShardedIndex, ShardedTable};

/// FNV-1a digest over every leaf of a built structure — the byte-identity
/// probe the invariance rows report.
fn digest(ix: &cadb_storage::PhysicalIndex) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for leaf in 0..ix.n_leaf_pages() {
        for &b in ix.leaf_bytes(leaf) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Stream one table's rows through `shards` independent range streams and
/// concatenate — the parallel-datagen read path.
fn streamed_rows(gen: &TpchGen, table: &str, shards: usize) -> Vec<Row> {
    let n = gen.stream_row_count(table).expect("table");
    let mut rows = Vec::new();
    for r in shard_ranges(n, shards) {
        for chunk in gen.stream_range(table, r).expect("range stream") {
            rows.extend(chunk.rows);
        }
    }
    rows
}

/// The shard experiment for one scale. `mem_budget_mib` caps every build
/// when given; builds always meter and report their peaks.
pub fn shard_table(scale: f64, mem_budget_mib: Option<usize>) -> Table {
    let gen = TpchGen::new(scale);
    let mut t = Table::new(
        format!(
            "shard: out-of-core data path at scale {scale} ({})",
            match mem_budget_mib {
                Some(mib) => format!("hard budget {mib} MiB"),
                None => "metering only".to_string(),
            }
        ),
        &[
            "stage",
            "rows",
            "raw KiB",
            "built KiB",
            "peak KiB",
            "invariant",
        ],
    );
    let budget_for = |_: &str| match mem_budget_mib {
        Some(mib) => MemoryBudget::limited(mib << 20),
        None => MemoryBudget::unlimited(),
    };

    // 1. Datagen shard invariance on the two big tables.
    for table in ["lineitem", "orders"] {
        let whole = streamed_rows(&gen, table, 1);
        let ok = [2usize, 8]
            .iter()
            .all(|&s| streamed_rows(&gen, table, s) == whole);
        t.row(vec![
            format!("stream {table} x{{1,2,8}} shards"),
            format!("{}", whole.len()),
            format!("{:.0}", rows_footprint(&whole) as f64 / 1024.0),
            String::new(),
            String::new(),
            if ok {
                "identical".into()
            } else {
                "DIVERGED".into()
            },
        ]);
    }

    // 2. Chunked ingestion into a sharded heap table under the budget.
    let li = gen.stream_table("lineitem").expect("lineitem stream");
    let dtypes: Vec<_> = {
        // Types come from the engine schema, so the experiment can't drift
        // from the DDL.
        let db: Database = gen.build().expect("tpch build");
        let t = db.table_id("lineitem").expect("lineitem");
        db.dtypes(t)
    };
    let budget = budget_for("table");
    let table = ShardedTable::from_chunks(
        &dtypes,
        CompressionKind::Page,
        8192,
        li.map(|c| c.rows),
        &BuildOptions::default().with_budget(budget.clone()),
    )
    .expect("sharded ingestion within budget");
    let raw = streamed_rows(&gen, "lineitem", 1);
    t.row(vec![
        format!("ingest lineitem -> {} heap shards", table.n_shards()),
        format!("{}", table.n_rows()),
        format!("{:.0}", rows_footprint(&raw) as f64 / 1024.0),
        format!("{:.0}", table.size_bytes() as f64 / 1024.0),
        format!("{:.0}", table.stats().peak_bytes as f64 / 1024.0),
        if table.scan(Parallelism::Auto).expect("scan") == raw {
            "scan=stream".into()
        } else {
            "DIVERGED".into()
        },
    ]);

    // 3. Build shard invariance: a keyed index over the streamed rows,
    //    every shard count x partitioning x parallelism mode.
    let reference = ShardedIndex::build(
        &raw,
        &dtypes,
        1,
        CompressionKind::Page,
        ShardSpec::range(1),
        &BuildOptions::default().with_parallelism(Parallelism::Serial),
    )
    .expect("reference build");
    let want = digest(reference.index());
    let mut all_equal = true;
    let mut peak = 0usize;
    for shards in [2usize, 8] {
        for partitioning in [Partitioning::Range, Partitioning::Hash] {
            for par in [Parallelism::Serial, Parallelism::Auto] {
                let budget = budget_for("index");
                let built = ShardedIndex::build(
                    &raw,
                    &dtypes,
                    1,
                    CompressionKind::Page,
                    ShardSpec {
                        shards,
                        partitioning,
                    },
                    &BuildOptions::default()
                        .with_parallelism(par)
                        .with_budget(budget),
                )
                .expect("sharded build within budget");
                all_equal &= digest(built.index()) == want;
                peak = peak.max(built.stats().peak_bytes);
            }
        }
    }
    t.row(vec![
        "index(orderkey) x{2,8} shards x{Range,Hash} x{Serial,Auto}".into(),
        format!("{}", raw.len()),
        format!("{:.0}", rows_footprint(&raw) as f64 / 1024.0),
        format!("{:.0}", reference.index().size_bytes() as f64 / 1024.0),
        format!("{:.0}", peak as f64 / 1024.0),
        if all_equal {
            "bit-identical".into()
        } else {
            "DIVERGED".into()
        },
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_experiment_reports_invariance() {
        let t = shard_table(0.05, Some(512)).render();
        assert!(t.contains("identical"), "{t}");
        assert!(t.contains("bit-identical"), "{t}");
        assert!(t.contains("scan=stream"), "{t}");
        assert!(!t.contains("DIVERGED"), "{t}");
    }
}
