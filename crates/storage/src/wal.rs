//! The write-ahead-log segment format.
//!
//! A segment is a flat byte sequence of self-delimiting *frames*:
//!
//! ```text
//! [payload_len u32 LE][crc32 u32 LE][frame_type u8][lsn u64 LE][payload …]
//! ```
//!
//! The CRC covers everything after it (type byte, LSN, payload), so any
//! torn or bit-flipped tail is detected. Replay follows the classic
//! ARIES-style discipline restricted to redo:
//!
//! * frames are applied in order until the first frame that is incomplete
//!   (*torn tail*) or fails its CRC (*partial frame*) — everything from
//!   that offset on is truncated, never applied;
//! * a frame whose LSN was already seen is skipped (*duplicate frame*,
//!   e.g. a retried append that was made durable twice).
//!
//! The byte format lives in the storage crate — next to the page formats —
//! so the store (`cadb_exec::store`) and the fault-injection tests share
//! one definition of what a sync point is: the segment records the byte
//! offset after every appended frame, and a crash can be simulated by
//! cutting the segment at (or anywhere between) those offsets.

use cadb_common::bytes::{get_u32, get_u64, put_u32, put_u64};
use cadb_common::{CadbError, Result};

/// Fixed bytes before a frame's payload: length, CRC, type, LSN.
pub const FRAME_HEADER_BYTES: usize = 4 + 4 + 1 + 8;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// One committed transaction's effects.
    Commit,
    /// A checkpoint marker: every LSN ≤ this frame's is folded into the
    /// checkpointed structures; replay may start after it.
    Checkpoint,
}

impl FrameType {
    fn to_byte(self) -> u8 {
        match self {
            FrameType::Commit => 1,
            FrameType::Checkpoint => 2,
        }
    }

    fn from_byte(b: u8) -> Result<FrameType> {
        match b {
            1 => Ok(FrameType::Commit),
            2 => Ok(FrameType::Checkpoint),
            b => Err(CadbError::Storage(format!("WAL: unknown frame type {b}"))),
        }
    }
}

/// One decoded WAL frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalFrame {
    /// Kind of record.
    pub frame_type: FrameType,
    /// Log sequence number — strictly increasing per committed frame.
    pub lsn: u64,
    /// Frame body (commit frames: the byte-codec'd effects).
    pub payload: Vec<u8>,
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), bitwise — no table needed
/// for the frame sizes a WAL sees.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encode one frame into its segment bytes.
pub fn encode_frame(frame: &WalFrame) -> Vec<u8> {
    let mut body = Vec::with_capacity(1 + 8 + frame.payload.len());
    body.push(frame.frame_type.to_byte());
    put_u64(&mut body, frame.lsn);
    body.extend_from_slice(&frame.payload);
    let mut out = Vec::with_capacity(8 + body.len());
    put_u32(&mut out, frame.payload.len() as u32);
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

/// An in-memory WAL segment: append-only bytes plus the offset after each
/// durably appended frame (the *sync points* fault injection cuts at).
#[derive(Debug, Default, Clone)]
pub struct WalSegment {
    bytes: Vec<u8>,
    sync_points: Vec<usize>,
}

impl WalSegment {
    /// Empty segment.
    pub fn new() -> Self {
        WalSegment::default()
    }

    /// Append one frame; returns the sync point (byte offset after it).
    pub fn append(&mut self, frame: &WalFrame) -> usize {
        self.bytes.extend_from_slice(&encode_frame(frame));
        let point = self.bytes.len();
        self.sync_points.push(point);
        point
    }

    /// Append a batch of frames as **one coalesced durable write**: all
    /// frame bytes go in back to back and a single sync point is recorded
    /// after the last — the group-commit discipline, where one fsync makes
    /// a whole batch durable and a crash can only land between batches
    /// (or tear the batch's tail, which replay truncates frame by frame).
    /// Returns the sync point. Appending an empty batch records nothing.
    pub fn append_batch(&mut self, frames: &[WalFrame]) -> usize {
        if frames.is_empty() {
            return self.bytes.len();
        }
        for frame in frames {
            self.bytes.extend_from_slice(&encode_frame(frame));
        }
        let point = self.bytes.len();
        self.sync_points.push(point);
        point
    }

    /// Drop every byte before `offset` (which must be a frame boundary —
    /// in practice the start offset of a checkpoint marker frame): the
    /// checkpoint-anchored truncation that keeps the log bounded. Sync
    /// points at or before the cut disappear (a point *at* the cut would
    /// be the new segment's degenerate empty prefix); the rest shift down.
    /// Returns the number of bytes dropped.
    pub fn truncate_head(&mut self, offset: usize) -> usize {
        let offset = offset.min(self.bytes.len());
        self.bytes.drain(..offset);
        self.sync_points.retain(|&p| p > offset);
        for p in &mut self.sync_points {
            *p -= offset;
        }
        offset
    }

    /// The raw segment bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Byte offsets after each appended frame, in append order.
    pub fn sync_points(&self) -> &[usize] {
        &self.sync_points
    }

    /// Number of appended frames.
    pub fn n_frames(&self) -> usize {
        self.sync_points.len()
    }
}

/// The **global commit-order record** of a sharded log set: the payload of
/// one `Commit` frame in the *order log* that stitches a committed
/// statement's per-shard WAL frames back into the single total order.
///
/// A sharded commit splits its effects by the partitioning policy: every
/// participating shard appends one frame (its sub-effects, under a
/// shard-local LSN) to its own segment, then the order log appends this
/// record under the **global** LSN. The record carries
///
/// * which `(shard, shard-local LSN)` frames the commit is made of, and
/// * the *route bytes*: for every appended / rewritten / deleted row of
///   the original statement, in original order, the shard it was routed
///   to — so recovery can re-interleave the per-shard sub-effects into
///   exactly the bytes the monolithic store would have logged.
///
/// A commit is durable **iff its order record is durable and every frame
/// it references is**; the order append is the commit point (shard
/// segments sync first). Recovery that finds an order record referencing
/// a missing shard frame discards that commit and everything after it —
/// the total order admits no gaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitOrderRecord {
    /// Raw id of the table the statement wrote.
    pub table: u32,
    /// `(shard, shard-local LSN)` per participating shard, ascending by
    /// shard. Empty for a commit that wrote no rows.
    pub entries: Vec<(u32, u64)>,
    /// Shard id per appended row of the original statement, in order.
    pub appended_routes: Vec<u8>,
    /// Shard id per rewritten row of the original statement, in order.
    pub rewritten_routes: Vec<u8>,
    /// Shard id per deleted row of the original statement, in order.
    pub deleted_routes: Vec<u8>,
}

impl CommitOrderRecord {
    /// Encode into an order-log frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            4 + 4
                + self.entries.len() * 12
                + 12
                + self.appended_routes.len()
                + self.rewritten_routes.len()
                + self.deleted_routes.len(),
        );
        put_u32(&mut out, self.table);
        put_u32(&mut out, self.entries.len() as u32);
        for (shard, lsn) in &self.entries {
            put_u32(&mut out, *shard);
            put_u64(&mut out, *lsn);
        }
        for routes in [
            &self.appended_routes,
            &self.rewritten_routes,
            &self.deleted_routes,
        ] {
            put_u32(&mut out, routes.len() as u32);
            out.extend_from_slice(routes);
        }
        out
    }

    /// Decode an order-log frame payload; rejects trailing bytes and
    /// entries out of shard order (both would mean a corrupt record the
    /// CRC happened to miss).
    pub fn decode(bytes: &[u8]) -> Result<CommitOrderRecord> {
        let mut p = 0usize;
        let table = get_u32(bytes, &mut p)?;
        let n_entries = get_u32(bytes, &mut p)? as usize;
        let mut entries = Vec::with_capacity(n_entries.min(1024));
        for _ in 0..n_entries {
            let shard = get_u32(bytes, &mut p)?;
            let lsn = get_u64(bytes, &mut p)?;
            if entries.last().is_some_and(|(s, _)| *s >= shard) {
                return Err(CadbError::Storage(
                    "order record: shard entries out of order".to_string(),
                ));
            }
            entries.push((shard, lsn));
        }
        let mut sections = Vec::with_capacity(3);
        for _ in 0..3 {
            let n = get_u32(bytes, &mut p)? as usize;
            let end = p
                .checked_add(n)
                .filter(|e| *e <= bytes.len())
                .ok_or_else(|| {
                    CadbError::Storage("order record: truncated route bytes".to_string())
                })?;
            sections.push(bytes[p..end].to_vec());
            p = end;
        }
        if p != bytes.len() {
            return Err(CadbError::Storage(format!(
                "order record: {} trailing bytes",
                bytes.len() - p
            )));
        }
        let deleted_routes = sections.pop().expect("three sections");
        let rewritten_routes = sections.pop().expect("three sections");
        let appended_routes = sections.pop().expect("three sections");
        Ok(CommitOrderRecord {
            table,
            entries,
            appended_routes,
            rewritten_routes,
            deleted_routes,
        })
    }
}

/// The outcome of scanning a (possibly torn) segment.
#[derive(Debug)]
pub struct WalReplay {
    /// Frames to apply, in log order, duplicates already dropped.
    pub frames: Vec<WalFrame>,
    /// Bytes of unusable tail that were truncated (0 for a clean segment).
    pub truncated_bytes: usize,
    /// Frames dropped because their LSN was already applied.
    pub duplicates_skipped: usize,
}

/// Scan a segment's bytes into applicable frames, truncating the tail at
/// the first incomplete or corrupt frame and skipping duplicate LSNs.
pub fn replay(bytes: &[u8]) -> WalReplay {
    let mut frames: Vec<WalFrame> = Vec::new();
    let mut duplicates_skipped = 0usize;
    let mut off = 0usize;
    while off < bytes.len() {
        let Some(frame_end) = frame_at(bytes, off) else {
            break; // torn or corrupt tail — truncate from here
        };
        let mut p = off;
        let payload_len = get_u32(bytes, &mut p).expect("validated") as usize;
        let _crc = get_u32(bytes, &mut p).expect("validated");
        let ty = FrameType::from_byte(bytes[p]).expect("validated");
        p += 1;
        let lsn = get_u64(bytes, &mut p).expect("validated");
        let payload = bytes[p..p + payload_len].to_vec();
        if frames.iter().any(|f| f.lsn == lsn) {
            duplicates_skipped += 1;
        } else {
            frames.push(WalFrame {
                frame_type: ty,
                lsn,
                payload,
            });
        }
        off = frame_end;
    }
    WalReplay {
        frames,
        truncated_bytes: bytes.len() - off,
        duplicates_skipped,
    }
}

/// End offset of a complete, CRC-valid frame starting at `off`, else None.
fn frame_at(bytes: &[u8], off: usize) -> Option<usize> {
    let mut p = off;
    let payload_len = get_u32(bytes, &mut p).ok()? as usize;
    let stored_crc = get_u32(bytes, &mut p).ok()?;
    let body_end = p.checked_add(1 + 8 + payload_len)?;
    if body_end > bytes.len() {
        return None;
    }
    let body = &bytes[p..body_end];
    if crc32(body) != stored_crc {
        return None;
    }
    FrameType::from_byte(body[0]).ok()?;
    Some(body_end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(lsn: u64, payload: &[u8]) -> WalFrame {
        WalFrame {
            frame_type: FrameType::Commit,
            lsn,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn roundtrip_in_order() {
        let mut seg = WalSegment::new();
        for i in 0..5u64 {
            seg.append(&frame(i, &[i as u8; 3]));
        }
        let r = replay(seg.bytes());
        assert_eq!(r.frames.len(), 5);
        assert_eq!(r.truncated_bytes, 0);
        assert_eq!(r.duplicates_skipped, 0);
        assert_eq!(r.frames[3], frame(3, &[3; 3]));
    }

    #[test]
    fn torn_tail_truncates_only_the_tail() {
        let mut seg = WalSegment::new();
        for i in 0..4u64 {
            seg.append(&frame(i, b"payload"));
        }
        // Cut anywhere strictly inside the last frame: the first three
        // frames must survive, the tail must be truncated.
        let third = seg.sync_points()[2];
        for cut in third + 1..seg.bytes().len() {
            let r = replay(&seg.bytes()[..cut]);
            assert_eq!(r.frames.len(), 3, "cut at {cut}");
            assert_eq!(r.truncated_bytes, cut - third);
        }
    }

    #[test]
    fn corrupt_frame_stops_replay() {
        let mut seg = WalSegment::new();
        seg.append(&frame(1, b"aaaa"));
        seg.append(&frame(2, b"bbbb"));
        let mut bytes = seg.bytes().to_vec();
        // Flip one payload bit of the second frame.
        let p = seg.sync_points()[0] + FRAME_HEADER_BYTES;
        bytes[p] ^= 0x40;
        let r = replay(&bytes);
        assert_eq!(r.frames.len(), 1);
        assert!(r.truncated_bytes > 0);
    }

    #[test]
    fn duplicate_lsn_is_skipped() {
        let mut seg = WalSegment::new();
        seg.append(&frame(1, b"a"));
        seg.append(&frame(1, b"a"));
        seg.append(&frame(2, b"b"));
        let r = replay(seg.bytes());
        assert_eq!(r.frames.len(), 2);
        assert_eq!(r.duplicates_skipped, 1);
        assert_eq!(r.frames[1].lsn, 2);
    }

    #[test]
    fn duplicate_skip_then_torn_tail_counts_tail_once() {
        // Regression guard for the tail accounting: a duplicate-LSN frame
        // advances the scan offset like any applied frame, so the torn
        // bytes after it must be counted exactly once — not once for the
        // skipped frame and again for the tail.
        let mut seg = WalSegment::new();
        seg.append(&frame(1, b"first"));
        seg.append(&frame(1, b"first")); // duplicated append
        seg.append(&frame(2, b"second"));
        let after_dup = seg.sync_points()[1];
        for cut in after_dup + 1..seg.bytes().len() {
            let r = replay(&seg.bytes()[..cut]);
            assert_eq!(r.frames.len(), 1, "cut at {cut}");
            assert_eq!(r.duplicates_skipped, 1, "cut at {cut}");
            assert_eq!(r.truncated_bytes, cut - after_dup, "cut at {cut}");
        }
    }

    #[test]
    fn batch_append_records_one_sync_point() {
        let mut seg = WalSegment::new();
        let frames: Vec<WalFrame> = (1..=3u64).map(|i| frame(i, &[i as u8; 4])).collect();
        let point = seg.append_batch(&frames);
        assert_eq!(point, seg.bytes().len());
        assert_eq!(seg.sync_points(), &[seg.bytes().len()]);
        assert_eq!(seg.n_frames(), 1); // one durable unit
        let r = replay(seg.bytes());
        assert_eq!(r.frames.len(), 3);
        assert_eq!(r.truncated_bytes, 0);
        // Byte stream is identical to three singleton appends.
        let mut singles = WalSegment::new();
        for f in &frames {
            singles.append(f);
        }
        assert_eq!(seg.bytes(), singles.bytes());
        assert_eq!(seg.append_batch(&[]), seg.bytes().len());
    }

    #[test]
    fn truncate_head_drops_prefix_and_shifts_sync_points() {
        let mut seg = WalSegment::new();
        for i in 0..4u64 {
            seg.append(&frame(i, b"payload"));
        }
        let keep_from = seg.sync_points()[1];
        let tail_len = seg.bytes().len() - keep_from;
        assert_eq!(seg.truncate_head(keep_from), keep_from);
        assert_eq!(seg.bytes().len(), tail_len);
        assert_eq!(seg.n_frames(), 2);
        let r = replay(seg.bytes());
        assert_eq!(r.frames.len(), 2);
        assert_eq!(r.frames[0].lsn, 2);
        assert_eq!(r.truncated_bytes, 0);
    }

    #[test]
    fn checkpoint_frames_roundtrip() {
        let mut seg = WalSegment::new();
        seg.append(&WalFrame {
            frame_type: FrameType::Checkpoint,
            lsn: 9,
            payload: Vec::new(),
        });
        let r = replay(seg.bytes());
        assert_eq!(r.frames[0].frame_type, FrameType::Checkpoint);
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn order_record_roundtrips() {
        let rec = CommitOrderRecord {
            table: 7,
            entries: vec![(0, 3), (2, 9)],
            appended_routes: vec![0, 2, 0],
            rewritten_routes: vec![2],
            deleted_routes: Vec::new(),
        };
        let bytes = rec.encode();
        assert_eq!(CommitOrderRecord::decode(&bytes).unwrap(), rec);
        // An empty commit (no rows, no shards) still roundtrips.
        let empty = CommitOrderRecord {
            table: 1,
            entries: Vec::new(),
            appended_routes: Vec::new(),
            rewritten_routes: Vec::new(),
            deleted_routes: Vec::new(),
        };
        assert_eq!(CommitOrderRecord::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn order_record_rejects_corruption() {
        let rec = CommitOrderRecord {
            table: 7,
            entries: vec![(1, 3)],
            appended_routes: vec![1, 1],
            rewritten_routes: Vec::new(),
            deleted_routes: Vec::new(),
        };
        let mut bytes = rec.encode();
        bytes.push(0); // trailing byte
        assert!(CommitOrderRecord::decode(&bytes).is_err());
        assert!(CommitOrderRecord::decode(&rec.encode()[..5]).is_err());
        let unordered = CommitOrderRecord {
            entries: vec![(2, 3), (1, 4)],
            ..rec
        };
        assert!(CommitOrderRecord::decode(&unordered.encode()).is_err());
    }
}
