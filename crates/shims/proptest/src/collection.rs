//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::{Strategy, ValueTree};
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Inclusive-min, exclusive-max size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone + 'static,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.uniform_usize(self.size.min, self.size.max_exclusive);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Length shrinks first (binary search toward the minimum size):
        // the minimal prefix, the half-way prefix, one element less.
        if value.len() > self.size.min {
            let min = self.size.min;
            let mid = min + (value.len() - min) / 2;
            for n in [min, mid, value.len() - 1] {
                if n < value.len() && !out.iter().any(|v: &Vec<S::Value>| v.len() == n) {
                    out.push(value[..n].to_vec());
                }
            }
        }
        // Then element-wise shrinks, earliest element first.
        for (i, elem) in value.iter().enumerate() {
            for cand in self.elem.shrink(elem) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }

    fn new_tree<'a>(&'a self, rng: &mut TestRng) -> ValueTree<'a, Vec<S::Value>>
    where
        Self: Sized,
        Self::Value: Clone + 'static,
    {
        let n = rng.uniform_usize(self.size.min, self.size.max_exclusive);
        let elems: Vec<ValueTree<'a, S::Value>> = (0..n).map(|_| self.elem.new_tree(rng)).collect();
        vec_tree(elems, self.size.min)
    }
}

/// Combine per-element trees into a vector tree: length shrinks first
/// (minimal prefix, half-way prefix, one element less — the same binary
/// search as the value-level shrinker), then element-wise tree shrinks,
/// earliest element first. Keeping element *trees* (not values) is what
/// lets a `prop_map`ped element strategy shrink inside a vector.
fn vec_tree<'a, T: Clone + 'static>(
    elems: Vec<ValueTree<'a, T>>,
    min: usize,
) -> ValueTree<'a, Vec<T>> {
    let value: Vec<T> = elems.iter().map(|t| t.value().clone()).collect();
    ValueTree::new(
        value,
        Rc::new(move || {
            let mut out = Vec::new();
            let len = elems.len();
            if len > min {
                let mid = min + (len - min) / 2;
                let mut seen_lens = Vec::new();
                for n in [min, mid, len - 1] {
                    if n < len && !seen_lens.contains(&n) {
                        seen_lens.push(n);
                        out.push(vec_tree(elems[..n].to_vec(), min));
                    }
                }
            }
            for i in 0..len {
                for c in elems[i].children() {
                    let mut next = elems.clone();
                    next[i] = c;
                    out.push(vec_tree(next, min));
                }
            }
            out
        }),
    )
}
