//! Experiment implementations, one per paper table/figure.

pub mod advise;
pub mod calibration;
pub mod designs;
pub mod estimation_runtime;
pub mod exec_actuals;
pub mod graph_quality;
pub mod motivating;
pub mod mv_rows;
pub mod obs;
pub mod par_speedup;
pub mod plan;
pub mod serve;
pub mod shard_path;

use cadb_common::ColumnId;
use cadb_engine::IndexSpec;

/// The set of candidate indexes "considered for TPC-H" used by the error
/// analysis and graph experiments: all 1–3 column key combinations over the
/// interesting lineitem columns, plus a few wider ones — a few hundred
/// indexes, as in the paper's Appendix C.
pub fn lineitem_index_specs(
    db: &cadb_engine::Database,
    kinds: &[cadb_compression::CompressionKind],
    max_width: usize,
) -> Vec<IndexSpec> {
    let t = db.table_id("lineitem").expect("TPC-H database");
    // orderkey, partkey, suppkey, quantity, extendedprice, discount,
    // returnflag, shipdate, shipmode.
    let cols: Vec<ColumnId> = [0u16, 1, 2, 4, 5, 6, 8, 10, 14]
        .iter()
        .map(|c| ColumnId(*c))
        .collect();
    let mut specs = Vec::new();
    for kind in kinds {
        // Singletons.
        for &a in &cols {
            specs.push(IndexSpec::secondary(t, vec![a]).with_compression(*kind));
        }
        if max_width < 2 {
            continue;
        }
        // Pairs (ordered — order matters for ORD-DEP methods).
        for &a in &cols[..6] {
            for &b in &cols[..6] {
                if a != b {
                    specs.push(IndexSpec::secondary(t, vec![a, b]).with_compression(*kind));
                }
            }
        }
        if max_width < 3 {
            continue;
        }
        // A band of triples.
        for w in cols.windows(3) {
            specs.push(IndexSpec::secondary(t, w.to_vec()).with_compression(*kind));
        }
        if max_width >= 4 {
            for w in cols.windows(4) {
                specs.push(IndexSpec::secondary(t, w.to_vec()).with_compression(*kind));
            }
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadb_compression::CompressionKind;

    #[test]
    fn spec_generator_produces_hundreds() {
        let db = cadb_datagen::TpchGen::new(0.01).build().unwrap();
        let specs = lineitem_index_specs(&db, &[CompressionKind::Row, CompressionKind::Page], 3);
        assert!(specs.len() > 80, "{}", specs.len());
        // Both orders of each pair exist (needed for ColSet experiments).
        let t = db.table_id("lineitem").unwrap();
        let ab = IndexSpec::secondary(t, vec![ColumnId(0), ColumnId(1)])
            .with_compression(CompressionKind::Row);
        let ba = IndexSpec::secondary(t, vec![ColumnId(1), ColumnId(0)])
            .with_compression(CompressionKind::Row);
        assert!(specs.contains(&ab) && specs.contains(&ba));
    }
}
