//! Property tests for the compressed execution kernels: every operator
//! over compressed pages must equal decompress-then-operate, across all
//! codecs × 3 seeds, and across `Parallelism` settings.
//!
//! The codec paths covered per generated dataset: PLAIN (None), NS (Row),
//! PAGE (prefix + local dictionary), GDICT (index-wide dictionary, which
//! may fall back to NS per column), and RLE — the GDICT → NS fallback is
//! additionally forced by a dedicated high-cardinality test below, so all
//! six physical column codecs run under the same assertions.

use cadb_common::rng::rng_for;
use cadb_common::{ColumnId, DataType, Parallelism, Row, TableId, Value};
use cadb_compression::CompressionKind;
use cadb_engine::{PredOp, Predicate};
use cadb_exec::{scan_aggregate, scan_filter, BoundPredicate, ExecMode};
use cadb_storage::PhysicalIndex;
use proptest::prelude::*;
use rand::Rng;

const SEEDS: [u64; 3] = [101, 202, 303];

const KINDS: [CompressionKind; 5] = [
    CompressionKind::None,
    CompressionKind::Row,
    CompressionKind::Page,
    CompressionKind::GlobalDict,
    CompressionKind::Rle,
];

fn dtypes() -> Vec<DataType> {
    vec![DataType::Int, DataType::Char { len: 8 }, DataType::Int]
}

/// Seeded random rows: a skewed int column, a nullable low-cardinality
/// string column, and a wide-range int column.
fn gen_rows(seed: u64, n: usize, int_mod: i64, str_card: u64, null_every: usize) -> Vec<Row> {
    let mut rng = rng_for(seed, "exec-prop");
    let mut rows: Vec<Row> = (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Int(rng.gen_range(0..int_mod.max(1))),
                if i % null_every == 0 {
                    Value::Null
                } else {
                    Value::Str(format!("s{}", rng.gen_range(0..str_card.max(1))))
                },
                Value::Int(rng.gen_range(-1000..1000)),
            ])
        })
        .collect();
    rows.sort();
    rows
}

fn predicate(pred_kind: usize, bound: i64) -> Predicate {
    let (op, values) = match pred_kind {
        0 => (PredOp::Eq, vec![Value::Int(bound)]),
        1 => (PredOp::Lt, vec![Value::Int(bound)]),
        2 => (PredOp::Ge, vec![Value::Int(bound)]),
        3 => (
            PredOp::Between,
            vec![Value::Int(bound), Value::Int(bound + 5)],
        ),
        _ => (PredOp::Neq, vec![Value::Int(bound)]),
    };
    Predicate {
        table: TableId(0),
        column: ColumnId(0),
        op,
        values,
    }
}

proptest! {
    #[test]
    fn filter_over_compressed_equals_decompress_then_filter(
        n in 60usize..220,
        int_mod in 1i64..40,
        str_card in 1u64..6,
        null_every in 2usize..12,
        pred_kind in 0usize..5,
        bound in 0i64..40,
    ) {
        for seed in SEEDS {
            let rows = gen_rows(seed, n, int_mod, str_card, null_every);
            let preds = vec![
                BoundPredicate { col: 0, pred: predicate(pred_kind, bound) },
                BoundPredicate {
                    col: 1,
                    pred: Predicate::eq(TableId(0), ColumnId(1), Value::Str("s1".into())),
                },
            ];
            for kind in KINDS {
                let ix = PhysicalIndex::build(&rows, &dtypes(), 1, kind).unwrap();
                let (reference, _) =
                    scan_filter(&ix, &preds, Parallelism::Serial, ExecMode::Reference).unwrap();
                let (serial, _) =
                    scan_filter(&ix, &preds, Parallelism::Serial, ExecMode::Compressed).unwrap();
                prop_assert_eq!(&serial, &reference, "{} seed {}", kind, seed);
                let (auto, _) =
                    scan_filter(&ix, &preds, Parallelism::Auto, ExecMode::Compressed).unwrap();
                prop_assert_eq!(&auto, &reference, "{} auto seed {}", kind, seed);
            }
        }
    }

    #[test]
    fn aggregate_over_compressed_equals_decompress_then_aggregate(
        n in 60usize..220,
        int_mod in 1i64..12,
        str_card in 1u64..5,
        null_every in 2usize..9,
        with_pred in 0usize..2,
        bound in 0i64..12,
    ) {
        for seed in SEEDS {
            let rows = gen_rows(seed, n, int_mod, str_card, null_every);
            let preds: Vec<BoundPredicate> = if with_pred == 1 {
                vec![BoundPredicate { col: 0, pred: predicate(1, bound) }]
            } else {
                Vec::new()
            };
            for kind in KINDS {
                let ix = PhysicalIndex::build(&rows, &dtypes(), 1, kind).unwrap();
                for col in [0usize, 2] {
                    let (r_agg, r_n, _) = scan_aggregate(
                        &ix, col, &preds, Parallelism::Serial, ExecMode::Reference,
                    ).unwrap();
                    let (c_agg, c_n, _) = scan_aggregate(
                        &ix, col, &preds, Parallelism::Serial, ExecMode::Compressed,
                    ).unwrap();
                    prop_assert_eq!(c_agg, r_agg, "{} col {} seed {}", kind, col, seed);
                    prop_assert_eq!(c_n, r_n);
                    let (a_agg, a_n, _) = scan_aggregate(
                        &ix, col, &preds, Parallelism::Auto, ExecMode::Compressed,
                    ).unwrap();
                    prop_assert_eq!(a_agg, r_agg, "{} col {} auto", kind, col);
                    prop_assert_eq!(a_n, r_n);
                }
            }
        }
    }
}

/// Force the sixth codec path — GDICT's per-column fallback to NS — and
/// hold the same equivalence: >255 distinct values push the id width to 2
/// bytes while blank-suppressed values stay cheaper, so the encoder falls
/// back per column.
#[test]
fn gdict_ns_fallback_path_is_equivalent() {
    let dtypes = vec![DataType::Int, DataType::Char { len: 4 }];
    // The first 600 rows carry 400 distinct strings (pushing the global
    // dictionary's id width to 2 bytes); everything after is blank, so the
    // later pages' NULL-suppressed blocks (2 bytes/value) undercut the
    // dictionary ids (2 bytes/value + header) and the encoder falls back.
    let rows: Vec<Row> = (0..4000)
        .map(|i| {
            Row::new(vec![
                Value::Int(i as i64),
                if i < 600 {
                    Value::Str(format!("{:03}", i % 400))
                } else {
                    Value::Str(String::new())
                },
            ])
        })
        .collect();
    let ix = PhysicalIndex::build(&rows, &dtypes, 1, CompressionKind::GlobalDict).unwrap();
    // Confirm the fallback actually happened on at least one leaf/column.
    let mut saw_ns_fallback = false;
    for leaf in ix.page_cursor() {
        let (_, sections) = cadb_compression::column_sections(leaf.bytes).unwrap();
        if sections
            .iter()
            .any(|s| s.tag == cadb_compression::page::tag::NS)
        {
            saw_ns_fallback = true;
            break;
        }
    }
    assert!(saw_ns_fallback, "test data failed to trigger the fallback");
    let preds = vec![BoundPredicate {
        col: 1,
        pred: Predicate::eq(TableId(0), ColumnId(1), Value::Str(String::new())),
    }];
    let (reference, _) =
        scan_filter(&ix, &preds, Parallelism::Serial, ExecMode::Reference).unwrap();
    assert!(!reference.is_empty());
    for par in [Parallelism::Serial, Parallelism::Auto] {
        let (compressed, _) = scan_filter(&ix, &preds, par, ExecMode::Compressed).unwrap();
        assert_eq!(compressed, reference, "{par:?}");
    }
}
