//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive-min, exclusive-max size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.uniform_usize(self.size.min, self.size.max_exclusive);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
