//! `exec` — the estimated-vs-actual experiment: run the advisor, then
//! **build and execute** its recommendation and put measured numbers next
//! to the estimates.
//!
//! For TPC-H and TPC-DS: run DTAc under a 30 % budget, materialize the
//! recommended configuration into real compressed structures
//! (`cadb_exec::MeasuredRun`), execute every workload query over
//! compressed pages (verified bit-identical against the
//! decompress-then-execute reference), and report per-structure estimated
//! vs measured size with signed relative error. The residuals re-fit the
//! error model's SampleCF coefficients (`ErrorModel::calibrate_samplecf`),
//! closing the loop from measurement back into the model.

use crate::report::Table;
use cadb_common::json::{JsonArray, JsonObject};
use cadb_core::strategy::{DeductionEstimator, EstimationContext, SizeEstimator};
use cadb_core::{Advisor, AdvisorOptions, ErrorModel, MeasuredResidual, Recommendation};
use cadb_engine::{Configuration, Database, IndexSpec, WhatIfOptimizer, Workload};
use cadb_exec::{MeasuredReport, MeasuredRun};
use cadb_sampling::SampleManager;
use cadb_shard::BuildOptions;

/// Budget fraction the exec run tunes under (same as `advise`).
const BUDGET_FRACTION: f64 = 0.3;

/// Advisor run + measured execution for one dataset. Returns the
/// recommendation, the actuals report, and the sampling fraction the
/// planner actually chose for the recommended compressed structures
/// (recovered by re-planning their estimation, as `advise` does) — the
/// `f` the calibration residuals are fitted against.
pub fn measure(db: &Database, workload: &Workload) -> (Recommendation, MeasuredReport, f64) {
    measure_with_build(
        db,
        workload,
        &BuildOptions::default().with_stripe_rows(usize::MAX),
    )
}

/// [`measure`] with explicit out-of-core build options: the
/// materialization runs striped under `build.budget` (structure bytes are
/// identical for every option; only working-set shape and the reported
/// peak change), so `repro --mem-budget` can run the whole experiment
/// under a hard memory cap.
pub fn measure_with_build(
    db: &Database,
    workload: &Workload,
    build: &BuildOptions,
) -> (Recommendation, MeasuredReport, f64) {
    let budget = BUDGET_FRACTION * db.base_data_bytes() as f64;
    let options = AdvisorOptions::dtac(budget);
    let rec = Advisor::new(db, options.clone())
        .recommend(workload)
        .expect("advisor run");
    let report = MeasuredRun::new(db, workload)
        .with_build(build.clone())
        .execute(&rec.configuration)
        .expect("measured run");
    let compressed: Vec<IndexSpec> = rec
        .configuration
        .structures()
        .iter()
        .filter(|s| s.spec.compression.is_compressed())
        .map(|s| s.spec.clone())
        .collect();
    let opt = WhatIfOptimizer::new(db).with_parallelism(options.parallelism);
    let manager = SampleManager::new(db, options.seed);
    let ctx = EstimationContext {
        opt: &opt,
        manager: &manager,
    };
    let fraction = DeductionEstimator::new(options.estimation)
        .estimate_sizes(&ctx, &compressed, &[])
        .expect("size estimation")
        .fraction;
    (rec, report, fraction)
}

/// The per-structure estimated-vs-measured table for one dataset.
pub fn exec_table(name: &str, report: &MeasuredReport) -> Table {
    let mut t = Table::new(
        format!(
            "exec: {name} estimated vs measured (DTAc at {:.0}% budget)",
            BUDGET_FRACTION * 100.0
        ),
        &[
            "structure",
            "est KiB",
            "meas KiB",
            "err %",
            "est rows",
            "meas rows",
            "est cf",
            "meas cf",
        ],
    );
    for s in &report.structures {
        t.row(vec![
            s.spec.to_string(),
            format!("{:.1}", s.estimated.bytes / 1024.0),
            format!("{:.1}", s.measured_bytes as f64 / 1024.0),
            format!("{:+.1}", 100.0 * s.size_error()),
            format!("{:.0}", s.estimated.rows),
            format!("{}", s.measured_rows),
            format!("{:.2}", s.estimated.compression_fraction),
            format!("{:.2}", s.measured_cf),
        ]);
    }
    t.row(vec![
        "TOTAL".to_string(),
        format!("{:.1}", report.estimated_total_bytes / 1024.0),
        format!("{:.1}", report.measured_total_bytes as f64 / 1024.0),
        format!("{:+.1}", 100.0 * report.total_size_error()),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    let verified = if report.all_queries_verified() {
        "all verified"
    } else {
        "MISMATCH"
    };
    let evals_c: usize = report
        .queries
        .iter()
        .map(|q| q.predicate_evals_compressed)
        .sum();
    let evals_r: usize = report
        .queries
        .iter()
        .map(|q| q.predicate_evals_reference)
        .sum();
    t.row(vec![
        format!(
            "queries: {} run, {verified}; predicate evals {evals_c} compressed vs {evals_r} reference",
            report.queries.len()
        ),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    t
}

/// The compressed-scan short-circuit, made visible: give every table a
/// clustered index per compression method, execute the whole query set
/// over those compressed pages, and count predicate evaluations on the
/// compressed path (lazy, at most one per RLE run / dictionary entry)
/// against the row-at-a-time reference. Results are bit-identical in every
/// row; only the work differs.
pub fn shortcircuit_table(name: &str, db: &Database, workload: &Workload) -> Table {
    use cadb_common::ColumnId;
    use cadb_compression::CompressionKind;
    use cadb_engine::{Configuration, IndexSpec, PhysicalStructure, WhatIfOptimizer};

    let opt = WhatIfOptimizer::new(db);
    let mut t = Table::new(
        format!("exec: {name} compressed-scan short-circuit (clustered base per method)"),
        &[
            "method",
            "evals compressed",
            "evals reference",
            "ratio",
            "verified",
        ],
    );
    for kind in [
        CompressionKind::Row,
        CompressionKind::Page,
        CompressionKind::GlobalDict,
        CompressionKind::Rle,
    ] {
        let mut cfg = Configuration::empty();
        for table in db.table_ids() {
            let spec = IndexSpec::clustered(table, vec![ColumnId(0)]).with_compression(kind);
            let size = opt.estimate_uncompressed_size(&spec);
            cfg.add(PhysicalStructure { spec, size });
        }
        let report = MeasuredRun::new(db, workload)
            .execute(&cfg)
            .expect("measured run");
        let evals_c: usize = report
            .queries
            .iter()
            .map(|q| q.predicate_evals_compressed)
            .sum();
        let evals_r: usize = report
            .queries
            .iter()
            .map(|q| q.predicate_evals_reference)
            .sum();
        t.row(vec![
            kind.to_string(),
            format!("{evals_c}"),
            format!("{evals_r}"),
            format!("{:.2}x", evals_r as f64 / evals_c.max(1) as f64),
            if report.all_queries_verified() {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    t
}

/// Re-fit the SampleCF error coefficients from the run's measured
/// residuals and render the before/after coefficients. `fraction` is the
/// sampling fraction the planner chose for these estimates (third element
/// of [`measure`]'s return).
pub fn calibration_table(report: &MeasuredReport, fraction: f64) -> Table {
    let residuals: Vec<MeasuredResidual> = report
        .residual_ratios()
        .into_iter()
        .map(|(kind, ratio)| MeasuredResidual {
            kind,
            fraction,
            ratio,
        })
        .collect();
    let base = ErrorModel::default();
    let fitted = base.calibrate_samplecf(&residuals);
    let mut t = Table::new(
        format!(
            "exec: SampleCF coefficients re-fit from {} measured residuals (f={:.0}%)",
            residuals.len(),
            100.0 * fraction
        ),
        &["coefficient", "paper fit", "measured fit"],
    );
    for (name, a, b) in [
        (
            "bias ORD-IND",
            base.samplecf_bias_ord_ind,
            fitted.samplecf_bias_ord_ind,
        ),
        (
            "sd ORD-IND",
            base.samplecf_sd_ord_ind,
            fitted.samplecf_sd_ord_ind,
        ),
        (
            "bias ORD-DEP",
            base.samplecf_bias_ord_dep,
            fitted.samplecf_bias_ord_dep,
        ),
        (
            "sd ORD-DEP",
            base.samplecf_sd_ord_dep,
            fitted.samplecf_sd_ord_dep,
        ),
    ] {
        t.row(vec![name.to_string(), format!("{a:.4}"), format!("{b:.4}")]);
    }
    t
}

/// Feed the measured maintenance residuals back into the what-if write
/// model ([`WhatIfOptimizer::with_maintenance_bias`]) and report the
/// residual bias before and after — the write-cost analogue of
/// [`calibration_table`]. Returns the summary table plus the
/// `(before, after, n)` biases so callers (and tests) can check the loop
/// actually closed.
pub fn maintenance_feedback(
    db: &Database,
    workload: &Workload,
    cfg: &Configuration,
    report: &MeasuredReport,
) -> (Table, f64, f64, usize) {
    let (before, n) = ErrorModel::maintenance_bias(&report.maintenance_residuals());
    let corrected = WhatIfOptimizer::new(db).with_maintenance_bias(before);
    let recosted: Vec<(f64, f64)> = report
        .writes
        .iter()
        .map(|w| {
            let (stmt, _) = &workload.statements[w.statement_index];
            (corrected.statement_cost(stmt, cfg), w.measured_cost)
        })
        .collect();
    let (after, _) = ErrorModel::maintenance_bias(&recosted);
    let mut t = Table::new(
        format!("exec: maintenance-cost bias fed back into what-if ({n} measured writes)"),
        &["quantity", "before feedback", "after feedback"],
    );
    t.row(vec![
        "geomean estimated/measured".to_string(),
        format!("{before:.3}"),
        format!("{after:.3}"),
    ]);
    t.row(vec![
        "|log bias|".to_string(),
        format!("{:.4}", before.ln().abs()),
        format!("{:.4}", after.ln().abs()),
    ]);
    (t, before, after, n)
}

/// Machine-readable form of the whole experiment: one document with the
/// recommendation and the measured report per dataset.
pub fn exec_json(datasets: &[(&str, &Database, &Workload)], scale: f64) -> String {
    let mut arr = JsonArray::new();
    for (name, db, w) in datasets {
        let (rec, report, fraction) = measure(db, w);
        let (_, bias_before, bias_after, bias_n) =
            maintenance_feedback(db, w, &rec.configuration, &report);
        arr.push_raw(
            &JsonObject::new()
                .str("dataset", name)
                .num("planner_fraction", fraction)
                .num("maintenance_bias_before", bias_before)
                .num("maintenance_bias_after", bias_after)
                .int("maintenance_bias_n", bias_n as i64)
                .raw("recommendation", &rec.to_json())
                .raw("measured", &report.to_json())
                .finish(),
        );
    }
    JsonObject::new()
        .str("experiment", "exec")
        .num("scale", scale)
        .num("budget_fraction", BUDGET_FRACTION)
        .raw("datasets", &arr.finish())
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_experiment_verifies_and_reports() {
        let gen = cadb_datagen::TpchGen::new(0.01);
        let db = gen.build().unwrap();
        let w = gen.workload(&db).unwrap();
        let (rec, report, fraction) = measure(&db, &w);
        assert!(fraction > 0.0 && fraction <= 1.0);
        assert!(!rec.configuration.is_empty());
        assert_eq!(report.structures.len(), rec.configuration.len());
        assert!(report.all_queries_verified());
        assert_eq!(report.queries.len(), w.queries().count());
        // Sizes were measured, not estimated.
        assert!(report.measured_total_bytes > 0);
        let table = exec_table("tpch", &report);
        assert!(table.render().contains("TOTAL"));
        assert!(calibration_table(&report, fraction)
            .render()
            .contains("measured fit"));
        // Feeding the measured maintenance bias back must re-center the
        // what-if write costs: the residual bias collapses to ~1.
        let (mt, before, after, n) = maintenance_feedback(&db, &w, &rec.configuration, &report);
        assert!(n > 0, "tpch workload has measured writes");
        assert!(after.ln().abs() <= before.ln().abs() + 1e-9);
        assert!((after - 1.0).abs() < 0.05, "after-feedback bias {after}");
        assert!(mt.render().contains("after feedback"));
        let json = exec_json(&[("tpch", &db, &w)], 0.01);
        assert!(json.contains("\"all_queries_verified\":true"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
