//! TPC-H-shaped dataset and workload.
//!
//! The schema mirrors TPC-H's eight tables (we merge none, drop none); row
//! counts scale with a `scale` knob where `scale = 1.0` means a 60 k-row
//! `lineitem` — a laptop-sized stand-in for the paper's SF-1 run whose
//! *relative* table sizes match TPC-H. A Zipf exponent `z` skews foreign
//! keys and discounts, reproducing the skewed variants (`Z = 1, 3`) of the
//! paper's error analysis (Appendix C).

use crate::text;
use crate::zipf::Zipf;
use cadb_common::rng::rng_for;
use cadb_common::{Result, Row, TableId, Value};
use cadb_engine::lower::{create_table, date_to_days, lower_statement};
use cadb_engine::{Database, Statement, Workload};
use rand::Rng;

/// Configuration of the generator.
#[derive(Debug, Clone)]
pub struct TpchGen {
    /// Scale: 1.0 ⇒ 60 k lineitem rows; tables scale proportionally.
    pub scale: f64,
    /// Zipf exponent for skewed columns (0 = uniform, paper uses 0/1/3).
    pub zipf_theta: f64,
    /// Root RNG seed.
    pub seed: u64,
}

/// Categorical vocabularies shared by the materializing ([`TpchGen::build`])
/// and streaming (`stream_range`) generators.
pub(crate) const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDEAST"];
pub(crate) const NATIONS: usize = 25;
pub(crate) const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
pub(crate) const CONTAINERS: [&str; 5] = ["SM CASE", "LG BOX", "MED BAG", "JUMBO JAR", "WRAP PKG"];
pub(crate) const BRANDS: [&str; 5] = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
pub(crate) const PART_TYPES: [&str; 6] = [
    "STANDARD ANODIZED",
    "SMALL PLATED",
    "MEDIUM POLISHED",
    "LARGE BRUSHED",
    "ECONOMY BURNISHED",
    "PROMO ANODIZED",
];
pub(crate) const ORDER_STATUSES: [&str; 3] = ["O", "F", "P"];
pub(crate) const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"];
pub(crate) const RETURN_FLAGS: [&str; 3] = ["N", "R", "A"];
pub(crate) const LINE_STATUS: [&str; 2] = ["O", "F"];
pub(crate) const INSTRUCTS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
pub(crate) const SHIP_MODES: [&str; 7] = ["AIR", "TRUCK", "MAIL", "SHIP", "RAIL", "REG AIR", "FOB"];

/// The coarse ship group `shipgroup` is a deterministic function of the
/// ship mode (a correlated categorical, as in real TPC-H data).
pub(crate) fn ship_group(mode: &str) -> &'static str {
    match mode {
        "AIR" | "REG AIR" => "FAST",
        "TRUCK" | "MAIL" | "FOB" => "LAND",
        _ => "SLOW",
    }
}

impl TpchGen {
    /// Uniform (Z=0) generator at the given scale.
    pub fn new(scale: f64) -> Self {
        TpchGen {
            scale,
            zipf_theta: 0.0,
            seed: 42,
        }
    }

    /// Skewed generator.
    pub fn with_skew(scale: f64, zipf_theta: f64) -> Self {
        TpchGen {
            scale,
            zipf_theta,
            seed: 42,
        }
    }

    /// Same generator with a different root seed. Every stream the generator
    /// draws (per-table data, workload parameters) derives from this one
    /// seed via [`cadb_common::rng::derive_seed`], so two generators with
    /// equal configuration produce bit-identical databases.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn n(&self, base: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(1)
    }

    /// Row counts (lineitem, orders, customer, part, supplier).
    pub fn row_counts(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.n(60_000),
            self.n(15_000),
            self.n(1_500),
            self.n(2_000),
            self.n(100),
        )
    }

    /// Build the database: DDL + data.
    pub fn build(&self) -> Result<Database> {
        let mut db = Database::new();
        for ddl in DDL {
            match cadb_sql::parse_statement(ddl)? {
                cadb_sql::Statement::CreateTable(c) => {
                    create_table(&mut db, &c)?;
                }
                _ => unreachable!("DDL list only holds CREATE TABLE"),
            }
        }
        self.populate(&mut db)?;
        Ok(db)
    }

    fn populate(&self, db: &mut Database) -> Result<()> {
        let (n_li, n_ord, n_cust, n_part, n_supp) = self.row_counts();
        let mut rng = rng_for(self.seed, "tpch");
        let nations = NATIONS;

        let region = db.table_id("region")?;
        db.insert_rows(
            region,
            (0..5)
                .map(|i| {
                    Row::new(vec![
                        Value::Int(i as i64),
                        Value::Str(REGIONS[i].into()),
                        Value::Str(text::comment(&mut rng, 60)),
                    ])
                })
                .collect(),
        )?;

        let nation = db.table_id("nation")?;
        db.insert_rows(
            nation,
            (0..nations)
                .map(|i| {
                    Row::new(vec![
                        Value::Int(i as i64),
                        Value::Str(format!("NATION{i:02}")),
                        Value::Int((i % 5) as i64),
                        Value::Str(text::comment(&mut rng, 70)),
                    ])
                })
                .collect(),
        )?;

        let supplier = db.table_id("supplier")?;
        db.insert_rows(
            supplier,
            (0..n_supp)
                .map(|i| {
                    let nk = rng.gen_range(0..nations) as i64;
                    Row::new(vec![
                        Value::Int(i as i64),
                        Value::Str(text::numbered_name("Supplier", i as u64)),
                        Value::Str(text::comment(&mut rng, 30)),
                        Value::Int(nk),
                        Value::Str(text::phone(&mut rng, (nk % 5) as usize)),
                        Value::Int(rng.gen_range(-99_999..999_999)),
                        Value::Str(text::comment(&mut rng, 60)),
                    ])
                })
                .collect(),
        )?;

        let customer = db.table_id("customer")?;
        let segments = SEGMENTS;
        db.insert_rows(
            customer,
            (0..n_cust)
                .map(|i| {
                    let nk = rng.gen_range(0..nations) as i64;
                    Row::new(vec![
                        Value::Int(i as i64),
                        Value::Str(text::numbered_name("Customer", i as u64)),
                        Value::Str(text::comment(&mut rng, 25)),
                        Value::Int(nk),
                        Value::Str(text::phone(&mut rng, (nk % 5) as usize)),
                        Value::Int(rng.gen_range(-99_999..999_999)),
                        Value::Str(segments[rng.gen_range(0..segments.len())].into()),
                        Value::Str(text::comment(&mut rng, 80)),
                    ])
                })
                .collect(),
        )?;

        let part = db.table_id("part")?;
        let containers = CONTAINERS;
        let brands = BRANDS;
        let types = PART_TYPES;
        db.insert_rows(
            part,
            (0..n_part)
                .map(|i| {
                    Row::new(vec![
                        Value::Int(i as i64),
                        Value::Str(format!("part {}", text::comment(&mut rng, 20))),
                        Value::Str(format!("Manufacturer#{}", i % 5 + 1)),
                        Value::Str(brands[i % brands.len()].into()),
                        Value::Str(types[rng.gen_range(0..types.len())].into()),
                        Value::Int(rng.gen_range(1..51)),
                        Value::Str(containers[rng.gen_range(0..containers.len())].into()),
                        Value::Int(90_000 + (i as i64 % 200) * 100),
                        Value::Str(text::comment(&mut rng, 15)),
                    ])
                })
                .collect(),
        )?;

        // Orders: orderdate over 1992-01-01 .. 1998-08-02.
        let d0 = date_to_days(1992, 1, 1);
        let d1 = date_to_days(1998, 8, 2);
        let orders = db.table_id("orders")?;
        let cust_zipf = Zipf::new(n_cust, self.zipf_theta);
        let statuses = ORDER_STATUSES;
        let priorities = PRIORITIES;
        let mut order_dates = Vec::with_capacity(n_ord);
        db.insert_rows(
            orders,
            (0..n_ord)
                .map(|i| {
                    let od = rng.gen_range(d0..=d1);
                    order_dates.push(od);
                    Row::new(vec![
                        Value::Int(i as i64),
                        Value::Int(cust_zipf.sample(&mut rng) as i64),
                        Value::Str(statuses[rng.gen_range(0..3usize)].into()),
                        Value::Int(rng.gen_range(1_000..500_000)),
                        Value::Int(od),
                        Value::Str(priorities[rng.gen_range(0..5usize)].into()),
                        Value::Str(text::numbered_name("Clerk", rng.gen_range(0..1000))),
                        Value::Int(0),
                        Value::Str(text::comment(&mut rng, 49)),
                    ])
                })
                .collect(),
        )?;

        // Lineitem: ~4 lines per order.
        let lineitem = db.table_id("lineitem")?;
        let part_zipf = Zipf::new(n_part, self.zipf_theta);
        let supp_zipf = Zipf::new(n_supp, self.zipf_theta);
        let disc_zipf = Zipf::new(11, self.zipf_theta); // discounts 0.00..0.10
        let flags = RETURN_FLAGS;
        let status = LINE_STATUS;
        let instructs = INSTRUCTS;
        let modes = SHIP_MODES;
        let rows: Vec<Row> = (0..n_li)
            .map(|i| {
                let ok = (i % n_ord) as i64;
                let od = order_dates[ok as usize];
                let ship = od + rng.gen_range(1i64..=121);
                let commit = od + rng.gen_range(30i64..=90);
                let receipt = ship + rng.gen_range(1i64..=30);
                let qty = rng.gen_range(1..=50) as i64;
                let price = qty * rng.gen_range(90_000i64..110_000) / 100;
                // Correlated categoricals (as in real TPC-H data, where
                // RETURNFLAG and LINESTATUS are far from independent):
                // returned lines are always in 'F' status, and the ship
                // group is a deterministic coarsening of the ship mode.
                let flag = flags[rng.gen_range(0..3usize)];
                let stat = if flag == "N" {
                    status[rng.gen_range(0..2usize)]
                } else {
                    "F"
                };
                let mode = modes[rng.gen_range(0..7usize)];
                let group = ship_group(mode);
                Row::new(vec![
                    Value::Int(ok),
                    Value::Int(part_zipf.sample(&mut rng) as i64),
                    Value::Int(supp_zipf.sample(&mut rng) as i64),
                    Value::Int((i / n_ord + 1) as i64),
                    Value::Int(qty * 100),
                    Value::Int(price),
                    Value::Int(disc_zipf.sample(&mut rng) as i64),
                    Value::Int(rng.gen_range(0..9)),
                    Value::Str(flag.into()),
                    Value::Str(stat.into()),
                    Value::Int(ship),
                    Value::Int(commit),
                    Value::Int(receipt),
                    Value::Str(instructs[rng.gen_range(0..4usize)].into()),
                    Value::Str(mode.into()),
                    Value::Str(text::comment(&mut rng, 27)),
                    Value::Str(group.into()),
                ])
            })
            .collect();
        db.insert_rows(lineitem, rows)?;
        Ok(())
    }

    /// The 22-query + 2-bulk-load workload (all weights 1.0; scale INSERT
    /// weights with [`Workload::with_insert_weight`]).
    pub fn workload(&self, db: &Database) -> Result<Workload> {
        let mut w = Workload::default();
        for sql in QUERIES {
            w.push(lower_statement(db, sql)?, 1.0);
        }
        // Two bulk loads: 1% of lineitem and of orders per execution.
        let (n_li, n_ord, ..) = self.row_counts();
        let li = db.table_id("lineitem")?;
        let ord = db.table_id("orders")?;
        w.push(
            Statement::Insert(cadb_engine::BulkInsert {
                table: li,
                n_rows: (n_li / 100).max(1) as u64,
            }),
            1.0,
        );
        w.push(
            Statement::Insert(cadb_engine::BulkInsert {
                table: ord,
                n_rows: (n_ord / 100).max(1) as u64,
            }),
            1.0,
        );
        Ok(w)
    }

    /// Table id of the fact table.
    pub fn lineitem(&self, db: &Database) -> TableId {
        db.table_id("lineitem").expect("built by this generator")
    }
}

/// The DDL of the eight TPC-H tables (types sized as in the spec).
pub const DDL: &[&str] = &[
    "CREATE TABLE region (regionkey INT NOT NULL, name CHAR(25) NOT NULL, \
     comment VARCHAR(152), PRIMARY KEY (regionkey))",
    "CREATE TABLE nation (nationkey INT NOT NULL, name CHAR(25) NOT NULL, \
     regionkey INT NOT NULL, comment VARCHAR(152), PRIMARY KEY (nationkey))",
    "CREATE TABLE supplier (suppkey INT NOT NULL, name CHAR(25) NOT NULL, \
     address VARCHAR(40), nationkey INT NOT NULL, phone CHAR(15), \
     acctbal DECIMAL(2), comment VARCHAR(101), PRIMARY KEY (suppkey))",
    "CREATE TABLE customer (custkey INT NOT NULL, name VARCHAR(25) NOT NULL, \
     address VARCHAR(40), nationkey INT NOT NULL, phone CHAR(15), \
     acctbal DECIMAL(2), mktsegment CHAR(10), comment VARCHAR(117), \
     PRIMARY KEY (custkey))",
    "CREATE TABLE part (partkey INT NOT NULL, name VARCHAR(55) NOT NULL, \
     mfgr CHAR(25), brand CHAR(10), type VARCHAR(25), size INT, \
     container CHAR(10), retailprice DECIMAL(2), comment VARCHAR(23), \
     PRIMARY KEY (partkey))",
    "CREATE TABLE orders (orderkey INT NOT NULL, custkey INT NOT NULL, \
     orderstatus CHAR(1), totalprice DECIMAL(2), orderdate DATE NOT NULL, \
     orderpriority CHAR(15), clerk CHAR(15), shippriority INT, \
     comment VARCHAR(79), PRIMARY KEY (orderkey))",
    "CREATE TABLE lineitem (orderkey INT NOT NULL, partkey INT NOT NULL, \
     suppkey INT NOT NULL, linenumber INT NOT NULL, quantity DECIMAL(2), \
     extendedprice DECIMAL(2), discount DECIMAL(2), tax DECIMAL(2), \
     returnflag CHAR(1), linestatus CHAR(1), shipdate DATE NOT NULL, \
     commitdate DATE, receiptdate DATE, shipinstruct CHAR(25), \
     shipmode CHAR(10), comment VARCHAR(44), shipgroup CHAR(4) NOT NULL, \
     PRIMARY KEY (orderkey, linenumber))",
];

/// 22 analytic queries in the spirit of the TPC-H query set, expressed in
/// the supported SQL subset (single fact root, FK joins, conjunctive
/// predicates, grouping, aggregate arithmetic).
pub const QUERIES: &[&str] = &[
    // Q1: pricing summary.
    "SELECT returnflag, linestatus, SUM(quantity), SUM(extendedprice), \
     SUM(extendedprice * discount), COUNT(*) FROM lineitem \
     WHERE shipdate <= '1998-09-02' GROUP BY returnflag, linestatus",
    // Q3-ish: shipping priority.
    "SELECT lineitem.orderkey, SUM(extendedprice * discount) FROM lineitem \
     JOIN orders ON lineitem.orderkey = orders.orderkey \
     WHERE orderdate < '1995-03-15' AND shipdate > '1995-03-15' \
     GROUP BY lineitem.orderkey",
    // Q4-ish: order priority count.
    "SELECT orderpriority, COUNT(*) FROM orders \
     WHERE orderdate BETWEEN '1993-07-01' AND '1993-09-30' GROUP BY orderpriority",
    // Q5-ish: local supplier volume.
    "SELECT suppkey, SUM(extendedprice * discount) FROM lineitem \
     WHERE shipdate BETWEEN '1994-01-01' AND '1994-12-31' GROUP BY suppkey",
    // Q6: forecasting revenue (the classic compression-friendly scan).
    "SELECT SUM(extendedprice * discount) FROM lineitem \
     WHERE shipdate BETWEEN '1994-01-01' AND '1994-12-31' \
     AND discount BETWEEN 0.05 AND 0.07 AND quantity < 24",
    // Q7-ish: volume shipping by year window.
    "SELECT suppkey, SUM(extendedprice) FROM lineitem \
     WHERE shipdate BETWEEN '1995-01-01' AND '1996-12-31' GROUP BY suppkey",
    // Q9-ish: product type profit.
    "SELECT partkey, SUM(extendedprice * discount) FROM lineitem \
     GROUP BY partkey",
    // Q10-ish: returned items.
    "SELECT orders.custkey, SUM(totalprice) FROM orders \
     JOIN customer ON orders.custkey = customer.custkey \
     WHERE orderdate BETWEEN '1993-10-01' AND '1993-12-31' GROUP BY orders.custkey",
    // Q12-ish: shipping modes and priority.
    "SELECT shipmode, COUNT(*) FROM lineitem \
     WHERE receiptdate BETWEEN '1994-01-01' AND '1994-12-31' \
     AND shipmode IN ('MAIL', 'SHIP') GROUP BY shipmode",
    // Q13-ish: customer distribution.
    "SELECT custkey, COUNT(*) FROM orders GROUP BY custkey",
    // Q14-ish: promotion effect.
    "SELECT SUM(extendedprice * discount) FROM lineitem \
     WHERE shipdate BETWEEN '1995-09-01' AND '1995-09-30'",
    // Q15-ish: top supplier by revenue window.
    "SELECT suppkey, SUM(extendedprice) FROM lineitem \
     WHERE shipdate BETWEEN '1996-01-01' AND '1996-03-31' GROUP BY suppkey",
    // Q16-ish: part/supplier relationship.
    "SELECT brand, type, COUNT(*) FROM part WHERE size IN (1, 14, 23, 45) \
     GROUP BY brand, type",
    // Q17-ish: small-quantity-order revenue.
    "SELECT SUM(extendedprice) FROM lineitem WHERE quantity < 5",
    // Q18-ish: large volume customers.
    "SELECT orders.custkey, SUM(totalprice) FROM orders \
     WHERE totalprice > 4000 GROUP BY orders.custkey",
    // Q19-ish: discounted revenue for brand.
    "SELECT SUM(extendedprice * discount) FROM lineitem \
     WHERE quantity BETWEEN 1 AND 11 AND shipmode IN ('AIR', 'REG AIR')",
    // Q20-ish: potential part promotion.
    "SELECT partkey, SUM(quantity) FROM lineitem \
     WHERE shipdate BETWEEN '1994-01-01' AND '1994-12-31' GROUP BY partkey",
    // Q21-ish: suppliers who kept orders waiting.
    "SELECT suppkey, COUNT(*) FROM lineitem \
     WHERE receiptdate > '1995-06-30' AND commitdate < '1995-06-30' GROUP BY suppkey",
    // Q22-ish: global sales opportunity.
    "SELECT nationkey, COUNT(*), SUM(acctbal) FROM customer \
     WHERE acctbal > 0 GROUP BY nationkey",
    // Join-heavy: revenue by nation.
    "SELECT supplier.nationkey, SUM(extendedprice) FROM lineitem \
     JOIN supplier ON lineitem.suppkey = supplier.suppkey \
     WHERE shipdate BETWEEN '1995-01-01' AND '1995-12-31' \
     GROUP BY supplier.nationkey",
    // Star join: segment revenue.
    "SELECT mktsegment, SUM(totalprice) FROM orders \
     JOIN customer ON orders.custkey = customer.custkey GROUP BY mktsegment",
    // Covering-friendly narrow aggregate.
    "SELECT shipdate, SUM(quantity) FROM lineitem \
     WHERE shipdate BETWEEN '1996-01-01' AND '1996-06-30' GROUP BY shipdate",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_db() {
        let g = TpchGen::new(0.02);
        let db = g.build().unwrap();
        let (n_li, n_ord, n_cust, n_part, n_supp) = g.row_counts();
        assert_eq!(db.table(db.table_id("lineitem").unwrap()).n_rows(), n_li);
        assert_eq!(db.table(db.table_id("orders").unwrap()).n_rows(), n_ord);
        assert_eq!(db.table(db.table_id("customer").unwrap()).n_rows(), n_cust);
        assert_eq!(db.table(db.table_id("part").unwrap()).n_rows(), n_part);
        assert_eq!(db.table(db.table_id("supplier").unwrap()).n_rows(), n_supp);
        assert_eq!(db.table(db.table_id("nation").unwrap()).n_rows(), 25);
        assert_eq!(db.table(db.table_id("region").unwrap()).n_rows(), 5);
    }

    #[test]
    fn workload_has_22_queries_and_2_loads() {
        let g = TpchGen::new(0.02);
        let db = g.build().unwrap();
        let w = g.workload(&db).unwrap();
        assert_eq!(w.queries().count(), 22);
        assert_eq!(w.inserts().count(), 2);
    }

    #[test]
    fn deterministic_across_builds() {
        let a = TpchGen::new(0.01).build().unwrap();
        let b = TpchGen::new(0.01).build().unwrap();
        let t = a.table_id("lineitem").unwrap();
        assert_eq!(a.table(t).rows()[..50], b.table(t).rows()[..50]);
    }

    #[test]
    fn skew_changes_distribution() {
        let uniform = TpchGen::new(0.02).build().unwrap();
        let skewed = TpchGen::with_skew(0.02, 3.0).build().unwrap();
        let t = uniform.table_id("lineitem").unwrap();
        // partkey distinct count collapses under Z=3.
        let du = uniform.stats(t).columns[1].distinct;
        let ds = skewed.stats(t).columns[1].distinct;
        assert!(ds < du / 2, "uniform {du}, skewed {ds}");
    }

    #[test]
    fn queries_are_costable() {
        let g = TpchGen::new(0.01);
        let db = g.build().unwrap();
        let w = g.workload(&db).unwrap();
        let opt = cadb_engine::WhatIfOptimizer::new(&db);
        let cost = opt.workload_cost(&w, &cadb_engine::Configuration::empty());
        assert!(cost.is_finite() && cost > 0.0);
    }

    #[test]
    fn fk_integrity() {
        let g = TpchGen::new(0.01);
        let db = g.build().unwrap();
        let li = db.table_id("lineitem").unwrap();
        let (_, n_ord, _, n_part, n_supp) = g.row_counts();
        for r in db.table(li).rows().iter().take(500) {
            assert!(r.values[0].as_i64().unwrap() < n_ord as i64);
            assert!(r.values[1].as_i64().unwrap() < n_part as i64);
            assert!(r.values[2].as_i64().unwrap() < n_supp as i64);
        }
    }
}
