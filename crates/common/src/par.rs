//! A small scoped-thread parallel runtime for the estimation pipeline.
//!
//! The workspace parallelizes *embarrassingly parallel batches* — a round of
//! independent `SampleCF` builds, a sweep of what-if costings — not
//! fine-grained dataflow. [`par_map`] is therefore deliberately simple: a
//! worker pool of scoped threads pulling indices off an atomic counter, with
//! every result placed back at its input's index. No external dependencies,
//! no work stealing, no executor.
//!
//! # Determinism contract
//!
//! `par_map(par, items, f)` returns **exactly** `items.iter().enumerate()
//! .map(f).collect()` for every [`Parallelism`] setting, provided `f` is a
//! pure function of its arguments. Parallelism changes *who* computes each
//! element and in what wall-clock order — never the result, its position, or
//! the floating-point operation sequence inside one element. Code that needs
//! bit-for-bit serial equivalence (all of the §5 estimation pipeline) gets
//! it by construction: no cross-item accumulation happens off the main
//! thread.
//!
//! [`Parallelism::Serial`] is the escape hatch: it runs every batch inline
//! on the caller's thread, with no pool at all.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// How many worker threads batch operations may use.
///
/// The default, [`Parallelism::Auto`], sizes the pool from
/// [`std::thread::available_parallelism`]. `Serial` forces every batch
/// inline on the calling thread (the determinism *escape hatch* — results
/// are identical either way, `Serial` just removes the threads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker per available hardware thread.
    #[default]
    Auto,
    /// No threads: run batches inline on the caller.
    Serial,
    /// Exactly this many workers (clamped to ≥ 1).
    Threads(usize),
}

impl Parallelism {
    /// The worker count this setting resolves to on this machine.
    pub fn effective_threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// Apply `f` to every item, possibly on a pool of scoped worker threads,
/// returning the results in input order.
///
/// Equivalent to `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()`
/// for pure `f` — see the module docs for the determinism contract. A panic
/// in `f` is propagated to the caller after all workers finish.
///
/// Spawning costs tens of microseconds per worker, and `par_map` has **no
/// built-in small-batch cutoff** because item weight is caller knowledge:
/// a two-item SampleCF round is worth two threads, a thousand-item sweep
/// of nanosecond math is not. Call sites batching micro-work gate on batch
/// size themselves and fall back to [`Parallelism::Serial`] (see the
/// greedy level scoring and skyline selection in `cadb-core`) — results
/// are identical either way.
///
/// ```
/// use cadb_common::par::{par_map, Parallelism};
///
/// let squares = par_map(Parallelism::Threads(4), &[1u64, 2, 3, 4], |_, x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = par.effective_threads().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    // Workers adopt the dispatching thread's span so anything `f`
    // instruments nests under the caller's span (purely observational —
    // see `obs`; a no-op unless a recorder is installed).
    let obs_parent = crate::obs::current_span();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let _adopt = crate::obs::adopt_parent(obs_parent);
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => {
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                }
                Err(p) => panic = Some(p),
            }
        }
    });
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
    slots
        .into_iter()
        .map(|s| s.expect("par_map: every index visited exactly once"))
        .collect()
}

/// Fallible [`par_map`]: apply `f` to every item and collect into a single
/// `Result`, returning the **first** error in *input order* (not completion
/// order), exactly as the serial `collect::<Result<_, _>>()` would.
///
/// Short-circuits: once any worker observes an error, no further items are
/// handed out (in-flight items still finish). Because the work queue hands
/// indices out in ascending order, every item the serial loop would have
/// reached before the returned error has still been computed — only work
/// *after* the first error is skipped, never reordered.
pub fn try_par_map<T, R, E, F>(par: Parallelism, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let workers = par.effective_threads().min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let obs_parent = crate::obs::current_span();
    let mut slots: Vec<Option<Result<R, E>>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let _adopt = crate::obs::adopt_parent(obs_parent);
                    let mut local: Vec<(usize, Result<R, E>)> = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let r = f(i, &items[i]);
                        if r.is_err() {
                            stop.store(true, Ordering::Relaxed);
                        }
                        local.push((i, r));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => {
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                }
                Err(p) => panic = Some(p),
            }
        }
    });
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        match slot {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            // Indices are handed out in ascending order, so an unvisited
            // slot can only follow an error at a smaller index — which the
            // loop has already returned.
            None => unreachable!("unvisited slot with no earlier error"),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_for_all_settings() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x.wrapping_mul(2654435761)).collect();
        for par in [
            Parallelism::Serial,
            Parallelism::Auto,
            Parallelism::Threads(1),
            Parallelism::Threads(2),
            Parallelism::Threads(8),
            Parallelism::Threads(64),
        ] {
            let got = par_map(par, &items, |_, x| x.wrapping_mul(2654435761));
            assert_eq!(got, expect, "{par:?}");
        }
    }

    #[test]
    fn index_is_passed_through() {
        let items = vec!["a", "b", "c"];
        let got = par_map(Parallelism::Threads(3), &items, |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = vec![];
        assert!(par_map(Parallelism::Auto, &none, |_, x| *x).is_empty());
        assert_eq!(
            par_map(Parallelism::Threads(8), &[7u32], |_, x| *x),
            vec![7]
        );
    }

    #[test]
    fn effective_threads_floors_at_one() {
        assert_eq!(Parallelism::Serial.effective_threads(), 1);
        assert_eq!(Parallelism::Threads(0).effective_threads(), 1);
        assert_eq!(Parallelism::Threads(5).effective_threads(), 5);
        assert!(Parallelism::Auto.effective_threads() >= 1);
    }

    #[test]
    fn try_par_map_reports_first_error_in_input_order() {
        let items: Vec<i32> = (0..100).collect();
        let r = try_par_map(Parallelism::Threads(4), &items, |_, &x| {
            if x % 30 == 17 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(r.unwrap_err(), "bad 17");
        let ok = try_par_map(Parallelism::Threads(4), &items[..10], |_, &x| {
            Ok::<_, String>(x + 1)
        });
        assert_eq!(ok.unwrap(), (1..11).collect::<Vec<_>>());
    }

    #[test]
    fn try_par_map_short_circuits_after_error() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<i32> = (0..10_000).collect();
        let calls = AtomicUsize::new(0);
        let r = try_par_map(Parallelism::Threads(4), &items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            if x == 0 {
                Err("first item fails")
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
                Ok(x)
            }
        });
        assert_eq!(r.unwrap_err(), "first item fails");
        // With the very first item failing, the queue stops early: nowhere
        // near the full 10k items should have been handed out.
        assert!(
            calls.load(Ordering::Relaxed) < items.len() / 2,
            "no short-circuit: {} calls",
            calls.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(Parallelism::Threads(4), &items, |_, &x| {
                assert!(x != 33, "boom on 33");
                x
            })
        }));
        assert!(caught.is_err());
    }
}
