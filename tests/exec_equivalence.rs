//! Compressed-execution equivalence suite.
//!
//! Pins the exec subsystem's determinism contract end to end: executing a
//! workload query **directly over compressed pages** produces output
//! bit-identical to the decompress-then-execute reference, for every codec
//! and every `Parallelism` setting, on TPC-H and TPC-DS — and the whole
//! executor agrees with the engine's row-store executor on uncompressed
//! heaps. The six physical column codecs (PLAIN, NS, PAGE's
//! prefix+local-dictionary, GDICT, GDICT's NS fallback, RLE) are all
//! exercised: each page-level `CompressionKind` below drives its column
//! codecs, and the fallback is pinned separately in the exec crate's
//! property suite.

use cadb::common::{ColumnId, Parallelism};
use cadb::compression::CompressionKind;
use cadb::datagen::{TpcdsGen, TpchGen};
use cadb::engine::{
    Configuration, Database, IndexSpec, PhysicalStructure, WhatIfOptimizer, Workload,
};
use cadb::exec::{execute_query, ExecMode, MaterializedConfig, MeasuredRun};
use cadb::TuningSession;

const SCALE: f64 = 0.02;

const KINDS: [CompressionKind; 5] = [
    CompressionKind::None,
    CompressionKind::Row,
    CompressionKind::Page,
    CompressionKind::GlobalDict,
    CompressionKind::Rle,
];

const PARS: [Parallelism; 4] = [
    Parallelism::Serial,
    Parallelism::Auto,
    Parallelism::Threads(2),
    Parallelism::Threads(8),
];

fn tpch() -> (Database, Workload) {
    let gen = TpchGen::new(SCALE);
    let db = gen.build().unwrap();
    let w = gen.workload(&db).unwrap();
    (db, w)
}

fn tpcds() -> (Database, Workload) {
    let gen = TpcdsGen::new(SCALE);
    let db = gen.build().unwrap();
    let w = gen.workload(&db).unwrap();
    (db, w)
}

/// A configuration giving every table a clustered index compressed with
/// `kind` — so each query's scan really decodes that codec's pages.
fn clustered_config(db: &Database, kind: CompressionKind) -> Configuration {
    let opt = WhatIfOptimizer::new(db);
    let mut cfg = Configuration::empty();
    for t in db.table_ids() {
        let spec = IndexSpec::clustered(t, vec![ColumnId(0)]).with_compression(kind);
        let size = opt.estimate_uncompressed_size(&spec);
        cfg.add(PhysicalStructure { spec, size });
    }
    cfg
}

fn assert_equivalence(name: &str, db: &Database, w: &Workload) {
    for kind in KINDS {
        let cfg = clustered_config(db, kind);
        let mat = MaterializedConfig::build(db, &cfg).unwrap();
        for (qi, (q, _)) in w.queries().enumerate() {
            let (reference, _) =
                execute_query(&mat, q, Parallelism::Serial, ExecMode::Reference).unwrap();
            for par in PARS {
                let (compressed, _) = execute_query(&mat, q, par, ExecMode::Compressed).unwrap();
                assert_eq!(
                    compressed, reference,
                    "{name} q{qi} {kind} {par:?}: compressed != reference"
                );
                // The reference path itself must also be parallelism-proof.
                let (refp, _) = execute_query(&mat, q, par, ExecMode::Reference).unwrap();
                assert_eq!(refp, reference, "{name} q{qi} {kind} {par:?} reference");
            }
        }
    }
}

#[test]
fn tpch_compressed_execution_bit_identical_across_codecs_and_parallelism() {
    let (db, w) = tpch();
    assert_equivalence("tpch", &db, &w);
}

#[test]
fn tpcds_compressed_execution_bit_identical_across_codecs_and_parallelism() {
    let (db, w) = tpcds();
    assert_equivalence("tpcds", &db, &w);
}

/// On uncompressed heaps (insertion order preserved) the exec pipeline
/// must agree with the engine's row-store executor — grouped output is
/// sorted by both, non-grouped output keeps scan order.
#[test]
fn exec_agrees_with_engine_executor_on_heaps() {
    for (name, db, w) in [
        ("tpch", tpch().0, tpch().1),
        ("tpcds", tpcds().0, tpcds().1),
    ] {
        let mat = MaterializedConfig::build(&db, &Configuration::empty()).unwrap();
        for (qi, (q, _)) in w.queries().enumerate() {
            let engine_rows = cadb::engine::exec::execute(&db, q).unwrap();
            for mode in [ExecMode::Compressed, ExecMode::Reference] {
                let (rows, _) = execute_query(&mat, q, Parallelism::Serial, mode).unwrap();
                assert_eq!(rows, engine_rows, "{name} q{qi} {mode:?} vs engine");
            }
        }
    }
}

/// The full loop: advisor → materialize → execute → measure, on both
/// benchmarks, with every query verified and sizes measured.
#[test]
fn measured_run_closes_the_loop_on_tpch_and_tpcds() {
    for (name, (db, w)) in [("tpch", tpch()), ("tpcds", tpcds())] {
        let session = TuningSession::new(&db)
            .workload(&w)
            .budget_fraction(0.3)
            .parallelism(Parallelism::Threads(2));
        let rec = session.run().unwrap();
        assert!(
            !rec.configuration.is_empty(),
            "{name}: empty recommendation"
        );
        let report = session.execute(&rec).unwrap();
        assert!(report.all_queries_verified(), "{name}: query mismatch");
        assert_eq!(report.structures.len(), rec.configuration.len());
        assert!(report.measured_total_bytes > 0, "{name}");
        for s in &report.structures {
            assert!(s.measured_rows > 0, "{name} {}", s.spec);
            // Estimates must be in the right ballpark of reality — the
            // whole point of the paper's framework (generous bound; the
            // repro EXPERIMENTS table records the actual errors).
            assert!(
                s.size_error().abs() < 1.0,
                "{name} {}: estimated {} vs measured {} ({}%)",
                s.spec,
                s.estimated.bytes,
                s.measured_bytes,
                100.0 * s.size_error()
            );
        }
        // The report is identical regardless of parallelism.
        let serial = MeasuredRun::new(&db, &w)
            .with_parallelism(Parallelism::Serial)
            .execute(&rec.configuration)
            .unwrap();
        assert_eq!(serial.to_json(), report.to_json(), "{name} parallelism");
    }
}
