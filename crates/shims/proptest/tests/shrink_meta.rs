//! Meta-tests of the shrinking runner: known-failing properties (defined
//! *without* `#[test]` so they can be invoked and caught here) must report
//! a **locally minimal** counterexample, not the first random failure.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Fails for every x ≥ 57; the minimal counterexample is exactly 57.
    fn failing_int_property(x in 0i64..1000) {
        prop_assert!(x < 57, "x was {}", x);
    }

    // Fails whenever the vector has ≥ 3 elements; minimal case is any
    // 3-element vector of zeros (length shrinks + element shrinks).
    fn failing_vec_property(v in proptest::collection::vec(0u8..250, 0..40)) {
        prop_assert!(v.len() < 3);
    }

    // Fails when both coordinates are large; shrinking must minimize each
    // component while keeping the conjunction failing.
    fn failing_tuple_property(a in 0i64..500, b in 0i64..500) {
        prop_assert!(a < 40 || b < 25);
    }

    // Passes everywhere — the runner must not report anything.
    fn passing_property(x in 0i64..10) {
        prop_assert!(x < 10);
    }
}

fn failure_message(f: impl Fn() + std::panic::UnwindSafe) -> String {
    let payload = std::panic::catch_unwind(f).expect_err("property should fail");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("string panic payload")
}

#[test]
fn failing_property_reports_the_minimal_case() {
    let msg = failure_message(failing_int_property);
    assert!(
        msg.contains("minimal failing input"),
        "no shrink report: {msg}"
    );
    // Binary search over 0..1000 must land exactly on the boundary.
    assert!(
        msg.contains("(57,)"),
        "counterexample not minimized to 57: {msg}"
    );
    // The minimal case's own assertion message is carried along.
    assert!(msg.contains("x was 57"), "{msg}");
}

#[test]
fn failing_vec_property_minimizes_length_and_elements() {
    let msg = failure_message(failing_vec_property);
    assert!(msg.contains("minimal failing input"), "{msg}");
    assert!(
        msg.contains("([0, 0, 0],)"),
        "vector not minimized to three zeros: {msg}"
    );
}

#[test]
fn failing_tuple_property_minimizes_both_components() {
    let msg = failure_message(failing_tuple_property);
    assert!(msg.contains("minimal failing input"), "{msg}");
    assert!(
        msg.contains("(40, 25)"),
        "tuple not minimized to the boundary (40, 25): {msg}"
    );
}

#[test]
fn passing_property_stays_silent() {
    passing_property();
}
