//! The **sharded serving mode**: per-shard WAL streams under a global
//! commit order.
//!
//! [`ShardedStore`] serves the same snapshot-isolated write path as the
//! monolithic [`Store`], but the log is partitioned the way the build path
//! already partitions data (PR 8's `cadb_shard` policies): every shard
//! owns its own [`WalSegment`], a committed statement's effects are split
//! across shards by a [`ShardRouter`] ([`Partitioning::Hash`](cadb_shard::Partitioning::Hash) routes by
//! `key_hash` of the row, [`Partitioning::Range`](cadb_shard::Partitioning::Range) by base-ordinal ranges /
//! statement-local round-robin), and a dedicated **order log** of
//! [`CommitOrderRecord`]s stitches the per-shard frames back into the one
//! total order the monolithic store would have logged.
//!
//! ## The commit protocol
//!
//! A group commit of `B` statements runs the monolithic two-phase
//! discipline with a sharded durability step:
//!
//! 1. **Prepare (outside any lock)**: price maintenance against the
//!    *whole* statement (the same pure function the monolithic store
//!    uses, so measured costs and [`WriteActual`]s are bit-identical),
//!    split the effects per shard, and encode each shard's sub-frame.
//! 2. **Critical section**: assign consecutive *global* LSNs and
//!    per-shard *local* LSNs, append each shard's sub-frames as one
//!    coalesced batch (one sync point per participating shard), then
//!    append the batch's order records — **the order-log sync is the
//!    commit point** — and apply the original effects to the shared
//!    version chains.
//!
//! A commit is durable iff its order record and every shard frame it
//! references are durable. Because shard segments sync before the order
//! log, a crash can tear a shard tail (commits whose frames are lost are
//! discarded from the first gap on — the total order admits no holes) or
//! the order tail (fully-logged shard frames without an order record are
//! uncommitted), and recovery converges to the committed prefix either
//! way.
//!
//! ## Equivalence contract
//!
//! Sharding is an execution strategy, not a semantic: for every shard
//! count × [`Partitioning`](cadb_shard::Partitioning) policy × [`Parallelism`] mode × batch size,
//! the sharded store's snapshots, state digests, per-statement
//! [`WriteActual`]s, checkpoint artifacts and post-recovery state are
//! **bit-identical** to the monolithic store's
//! (`tests/sharded_store_equivalence.rs` pins the matrix, the crash
//! matrix in `tests/store_recovery.rs` pins it through fault injection at
//! every per-shard sync point and at the order record).

use super::effects::{CommitEffects, RowSlot};
use super::maintain::{fnv1a, maintain};
use super::{
    CommitReceipt, RecoveryReport, Snapshot, Store, StoreCheckpoint, StoreTotals, WriteActual,
};
use crate::measured::MaterializedConfig;
use cadb_common::{obs, CadbError, Parallelism, Result, TableId, Value};
use cadb_engine::{CostModel, Database, Workload};
use cadb_shard::{ShardRouter, ShardSpec};
use cadb_storage::wal::{
    self, CommitOrderRecord, FrameType, WalFrame, WalSegment, FRAME_HEADER_BYTES,
};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// Most shards a serving-layer log set supports — route bytes address
/// shards as `u8`.
pub const MAX_SERVE_SHARDS: usize = 255;

/// Per-shard log state: the shard's WAL segment, its local LSN counter
/// and its running maintenance counters.
#[derive(Debug, Default)]
struct ShardLog {
    wal: WalSegment,
    next_lsn: u64,
    stats: ShardStats,
}

/// The sharded log set: one segment per shard plus the order log.
#[derive(Debug, Default)]
struct ShardedLogs {
    order: WalSegment,
    shards: Vec<ShardLog>,
}

/// Running per-shard counters of the sharded write path — the
/// shard-local view of the maintenance work the store also reports
/// globally (each shard's numbers come from re-running the maintenance
/// accounting on just that shard's sub-effects).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard-local WAL frames appended.
    pub frames: u64,
    /// Rows routed to this shard (appended + rewritten + deleted).
    pub rows_routed: u64,
    /// Shard WAL bytes appended.
    pub wal_bytes: u64,
    /// Secondary/clustered index rows this shard's sub-effects touched.
    pub index_rows_touched: u64,
    /// Distinct MV groups this shard's sub-effects wrote.
    pub mv_groups_touched: u64,
}

impl ShardStats {
    /// View as named observability metrics (`store.shard.*`).
    pub fn as_metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("store.shard.frames", self.frames),
            ("store.shard.rows_routed", self.rows_routed),
            ("store.shard.wal_bytes", self.wal_bytes),
            ("store.shard.index_rows_touched", self.index_rows_touched),
            ("store.shard.mv_groups_touched", self.mv_groups_touched),
        ]
    }
}

/// What sharded crash recovery found across the log set.
#[derive(Debug, Clone)]
pub struct ShardedRecoveryReport {
    /// Per-shard replay outcome: `frames_applied` counts the shard frames
    /// an applied commit referenced; `truncated_bytes` /
    /// `duplicates_skipped` are the shard segment's own tail accounting.
    pub per_shard: Vec<RecoveryReport>,
    /// The order log's outcome: `frames_applied` is the number of commits
    /// re-applied in global order.
    pub order: RecoveryReport,
    /// Order records discarded because a shard frame they reference was
    /// lost (every later record is discarded with them — the total order
    /// admits no gaps).
    pub commits_discarded: usize,
    /// Highest committed LSN after replay.
    pub watermark: u64,
}

impl ShardedRecoveryReport {
    /// View as named observability metrics (also published by
    /// [`ShardedStore::recover`] / `recover_with_checkpoint`).
    pub fn as_metrics(&self) -> Vec<(&'static str, u64)> {
        let mut m = vec![
            (
                "store.shard.recovery.commits_applied",
                self.order.frames_applied as u64,
            ),
            (
                "store.shard.recovery.commits_discarded",
                self.commits_discarded as u64,
            ),
        ];
        m.push((
            "store.shard.recovery.truncated_bytes",
            self.per_shard
                .iter()
                .map(|r| r.truncated_bytes as u64)
                .sum::<u64>()
                + self.order.truncated_bytes as u64,
        ));
        m.push((
            "store.shard.recovery.duplicates_skipped",
            self.per_shard
                .iter()
                .map(|r| r.duplicates_skipped as u64)
                .sum::<u64>()
                + self.order.duplicates_skipped as u64,
        ));
        m
    }
}

/// A sharded checkpoint: the monolithic artifact (folded structures,
/// overlays, totals — bit-identical to what the monolithic store would
/// produce at the same watermark) plus the per-shard local LSN counters
/// the truncated shard logs resume from.
#[derive(Debug)]
pub struct ShardedCheckpoint {
    /// The folded artifact, shared with the monolithic format.
    pub store: StoreCheckpoint,
    /// Shard-local `next_lsn` after each shard's checkpoint marker.
    pub shard_next_lsns: Vec<u64>,
}

/// One statement's effects split across the shard logs.
struct SplitEffects {
    /// `Some(sub-effects)` per shard that received at least one row.
    per_shard: Vec<Option<CommitEffects>>,
    /// Route bytes, in the original statement's row order.
    appended_routes: Vec<u8>,
    rewritten_routes: Vec<u8>,
    deleted_routes: Vec<u8>,
}

/// The snapshot-isolated store in sharded serving mode. See the module
/// docs for the protocol; every read-side accessor delegates to the
/// shared (monolithic-identical) MVCC state.
pub struct ShardedStore<'a> {
    inner: Store<'a>,
    spec: ShardSpec,
    logs: RwLock<ShardedLogs>,
}

impl<'a> ShardedStore<'a> {
    /// Open a sharded store over a materialized configuration. A spec of
    /// one shard degenerates to the monolithic protocol with the order
    /// log alongside (and is the baseline the equivalence suite compares
    /// against).
    pub fn open(
        db: &'a Database,
        mat: &'a MaterializedConfig,
        model: CostModel,
        spec: ShardSpec,
    ) -> Result<ShardedStore<'a>> {
        if spec.shards > MAX_SERVE_SHARDS {
            return Err(CadbError::InvalidArgument(format!(
                "sharded store supports at most {MAX_SERVE_SHARDS} shards, got {}",
                spec.shards
            )));
        }
        Ok(ShardedStore {
            inner: Store::open(db, mat, model),
            spec,
            logs: RwLock::new(ShardedLogs {
                order: WalSegment::new(),
                shards: (0..spec.shards).map(|_| ShardLog::default()).collect(),
            }),
        })
    }

    /// The shard layout this store serves under.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Number of shard logs.
    pub fn shards(&self) -> usize {
        self.spec.shards
    }

    /// The router for one table's writes.
    fn router(&self, t: TableId, base_n: usize) -> ShardRouter {
        let n_key = self
            .inner
            .mat
            .base_spec(t)
            .map(|s| s.key_cols.len().min(self.inner.db.dtypes(t).len()))
            .unwrap_or(0);
        ShardRouter::new(self.spec, n_key, base_n)
    }

    /// Split one statement's effects across the shards. Routing is a pure
    /// function of the effects and the immutable base, so the split — and
    /// every shard's logged bytes — is identical across parallelism modes
    /// and batch sizes.
    fn split(&self, eff: &CommitEffects, router: &ShardRouter) -> SplitEffects {
        let n = self.spec.shards;
        let mut per_shard: Vec<Option<CommitEffects>> = (0..n).map(|_| None).collect();
        fn sub(slot: &mut Option<CommitEffects>, table: TableId) -> &mut CommitEffects {
            slot.get_or_insert_with(|| CommitEffects {
                table,
                appended: Vec::new(),
                rewritten: Vec::new(),
                deleted: Vec::new(),
            })
        }
        let mut appended_routes = Vec::with_capacity(eff.appended.len());
        for (seq, row) in eff.appended.iter().enumerate() {
            let s = router.route_append(row, seq as u64);
            sub(&mut per_shard[s], eff.table).appended.push(row.clone());
            appended_routes.push(s as u8);
        }
        let mut rewritten_routes = Vec::with_capacity(eff.rewritten.len());
        for rw in &eff.rewritten {
            let s = match rw.slot {
                RowSlot::Base(o) => router.route_base_slot(o, &rw.old_row),
                RowSlot::Appended(q) => router.route_append(&rw.old_row, q as u64),
            };
            sub(&mut per_shard[s], eff.table).rewritten.push(rw.clone());
            rewritten_routes.push(s as u8);
        }
        let mut deleted_routes = Vec::with_capacity(eff.deleted.len());
        for ts in &eff.deleted {
            let s = match ts.slot {
                RowSlot::Base(o) => router.route_base_slot(o, &ts.old_row),
                RowSlot::Appended(q) => router.route_append(&ts.old_row, q as u64),
            };
            sub(&mut per_shard[s], eff.table).deleted.push(ts.clone());
            deleted_routes.push(s as u8);
        }
        SplitEffects {
            per_shard,
            appended_routes,
            rewritten_routes,
            deleted_routes,
        }
    }

    /// Resolve a bulk INSERT into effects (delegates to the shared
    /// prepare path — pure, lock-free).
    pub fn prepare_insert(
        &self,
        ins: &cadb_engine::BulkInsert,
        seed: u64,
        label: &str,
    ) -> Result<CommitEffects> {
        self.inner.prepare_insert(ins, seed, label)
    }

    /// Resolve a bulk UPDATE into effects.
    pub fn prepare_update(
        &self,
        upd: &cadb_engine::BulkUpdate,
        seed: u64,
        label: &str,
    ) -> Result<CommitEffects> {
        self.inner.prepare_update(upd, seed, label)
    }

    /// Resolve a bulk DELETE into effects.
    pub fn prepare_delete(
        &self,
        del: &cadb_engine::BulkDelete,
        seed: u64,
        label: &str,
    ) -> Result<CommitEffects> {
        self.inner.prepare_delete(del, seed, label)
    }

    /// Commit resolved effects — a [`Self::commit_batch`] of one.
    pub fn commit(&self, eff: CommitEffects) -> Result<CommitReceipt> {
        let mut receipts = self.commit_batch(std::slice::from_ref(&eff))?;
        Ok(receipts.pop().expect("one effect yields one receipt"))
    }

    /// **Sharded group commit**: price and split every statement outside
    /// any lock, then — in one critical section — assign consecutive
    /// global LSNs and shard-local LSNs, append each participating
    /// shard's sub-frames as one coalesced batch (one sync point per
    /// shard), append the order records (one order-log sync: the commit
    /// point) and apply the original effects in order.
    ///
    /// Receipts — LSNs, counters, measured costs — are bit-identical to
    /// the monolithic [`Store::commit_batch`] on the same effects.
    pub fn commit_batch(&self, effs: &[CommitEffects]) -> Result<Vec<CommitReceipt>> {
        if effs.is_empty() {
            return Ok(Vec::new());
        }
        let _span = obs::span("store.shard.commit_batch");
        let t_batch = obs::recording().then(Instant::now);
        // Phase 1, outside any lock: warm caches, price maintenance
        // against the whole statement (monolithic framing, so the
        // receipts price identically), split per shard and price each
        // shard's sub-effects for the shard-local accounting.
        let prepare_span = obs::span("store.shard.commit.prepare");
        let mut base_ns = Vec::with_capacity(effs.len());
        let mut runs = Vec::with_capacity(effs.len());
        let mut splits = Vec::with_capacity(effs.len());
        let mut sub_payloads: Vec<Vec<Option<Vec<u8>>>> = Vec::with_capacity(effs.len());
        let mut sub_counters: Vec<Vec<Option<(u64, u64)>>> = Vec::with_capacity(effs.len());
        for eff in effs {
            self.inner.warm_for_table(eff.table)?;
            let base_n = self.inner.base_rows(eff.table)?.len();
            base_ns.push(base_n);
            // Monolithic frame size: what the statement would have cost
            // to log unsharded — the receipt's `wal_bytes`.
            let mono_bytes = (eff.encode().len() + FRAME_HEADER_BYTES) as u64;
            runs.push(maintain(
                eff,
                &self.inner.specs,
                &self.inner.model,
                self.inner.base_kind(eff.table),
                mono_bytes,
                &|mv, row, col| self.inner.resolve_col(mv, row, col, 0),
            ));
            let split = self.split(eff, &self.router(eff.table, base_n));
            let mut payloads = Vec::with_capacity(self.spec.shards);
            let mut counters = Vec::with_capacity(self.spec.shards);
            for sub in &split.per_shard {
                match sub {
                    None => {
                        payloads.push(None);
                        counters.push(None);
                    }
                    Some(sub) => {
                        let payload = sub.encode();
                        // Shard-local maintenance accounting: the same
                        // pure counter function, restricted to the rows
                        // this shard received.
                        let sub_run = maintain(
                            sub,
                            &self.inner.specs,
                            &self.inner.model,
                            self.inner.base_kind(sub.table),
                            (payload.len() + FRAME_HEADER_BYTES) as u64,
                            &|mv, row, col| self.inner.resolve_col(mv, row, col, 0),
                        );
                        counters.push(Some((
                            sub_run.counters.index_rows_touched,
                            sub_run.counters.mv_groups_touched,
                        )));
                        payloads.push(Some(payload));
                    }
                }
            }
            sub_payloads.push(payloads);
            sub_counters.push(counters);
            splits.push(split);
        }
        drop(prepare_span);
        // Phase 2, the critical section. Lock order: state, then logs.
        let mut st = self.inner.state.write();
        let mut logs = self.logs.write();
        let first = st.next_lsn;
        st.next_lsn += effs.len() as u64;
        let mut shard_frames: Vec<Vec<WalFrame>> =
            (0..self.spec.shards).map(|_| Vec::new()).collect();
        let mut order_frames = Vec::with_capacity(effs.len());
        let mut fanouts = Vec::with_capacity(effs.len());
        for (i, (eff, split)) in effs.iter().zip(&splits).enumerate() {
            let lsn = first + i as u64;
            let mut entries = Vec::new();
            for (s, payload) in sub_payloads[i].iter().enumerate() {
                let Some(payload) = payload else { continue };
                let sub = split.per_shard[s].as_ref().expect("payload implies sub");
                let local = logs.shards[s].next_lsn;
                logs.shards[s].next_lsn += 1;
                shard_frames[s].push(WalFrame {
                    frame_type: FrameType::Commit,
                    lsn: local,
                    payload: payload.clone(),
                });
                entries.push((s as u32, local));
                let stats = &mut logs.shards[s].stats;
                stats.frames += 1;
                stats.rows_routed += sub.n_rows() as u64;
                if let Some((ix_rows, mv_groups)) = sub_counters[i][s] {
                    stats.index_rows_touched += ix_rows;
                    stats.mv_groups_touched += mv_groups;
                }
            }
            fanouts.push(entries.len() as u64);
            let record = CommitOrderRecord {
                table: eff.table.0,
                entries,
                appended_routes: split.appended_routes.clone(),
                rewritten_routes: split.rewritten_routes.clone(),
                deleted_routes: split.deleted_routes.clone(),
            };
            order_frames.push(WalFrame {
                frame_type: FrameType::Commit,
                lsn,
                payload: record.encode(),
            });
        }
        // Durability: every participating shard syncs its coalesced
        // sub-frames first, then the order log syncs the batch's records
        // — the commit point.
        let append_span = obs::span("store.shard.commit.append");
        let t_append = obs::recording().then(Instant::now);
        for (s, frames) in shard_frames.iter().enumerate() {
            if frames.is_empty() {
                continue;
            }
            logs.shards[s].wal.append_batch(frames);
            logs.shards[s].stats.wal_bytes = logs.shards[s].wal.bytes().len() as u64;
        }
        logs.order.append_batch(&order_frames);
        if let Some(t0) = t_append {
            obs::observe("store.shard.wal_append_ns", t0.elapsed().as_nanos() as u64);
        }
        drop(append_span);
        // Apply the *original* effects at the global LSNs — the shared
        // MVCC state evolves exactly as under the monolithic store.
        let apply_span = obs::span("store.shard.commit.apply");
        let mut receipts = Vec::with_capacity(effs.len());
        for (i, (eff, run)) in effs.iter().zip(&runs).enumerate() {
            let lsn = first + i as u64;
            Store::apply(&mut st, eff, lsn, base_ns[i])?;
            Store::absorb(&mut st, run, lsn);
            receipts.push(CommitReceipt {
                lsn,
                counters: run.counters,
                measured_cost: run.measured_cost,
                measured_mv_cost: run.measured_mv_cost,
            });
        }
        drop(apply_span);
        obs::counter_add("store.commits", effs.len() as u64);
        obs::counter_add("store.commit_batches", 1);
        obs::counter_add("store.shard.order_records", order_frames.len() as u64);
        obs::counter_add("store.shard.frames", fanouts.iter().sum());
        obs::gauge_set("store.shard.order_bytes", logs.order.bytes().len() as f64);
        for f in fanouts {
            obs::observe("store.shard.fanout", f);
        }
        if let Some(t0) = t_batch {
            let ns = t0.elapsed().as_nanos() as u64;
            obs::observe("store.group_commit_ns", ns);
            obs::observe("store.commit_batch_rows", effs.len() as u64);
        }
        Ok(receipts)
    }

    /// Execute every write statement of a workload through the sharded
    /// commit path. Equivalent to [`Self::apply_workload_batched`] with
    /// batch size 1.
    pub fn apply_workload(
        &self,
        w: &Workload,
        seed: u64,
        par: Parallelism,
    ) -> Result<Vec<WriteActual>> {
        self.apply_workload_batched(w, seed, par, 1)
    }

    /// The sharded group-commit workload driver: prepare every write in
    /// parallel under `par`, commit **in statement order** in durable
    /// batches of `batch`. Per-statement actuals (LSNs included) are
    /// bit-identical to the monolithic [`Store::apply_workload_batched`]
    /// for every `par` × `batch` × shard count × partitioning policy.
    pub fn apply_workload_batched(
        &self,
        w: &Workload,
        seed: u64,
        par: Parallelism,
        batch: usize,
    ) -> Result<Vec<WriteActual>> {
        let _span = obs::span("store.shard.apply_workload");
        let batch = batch.max(1);
        let prepared = self.inner.prepare_writes(w, seed, par)?;
        let mut out = Vec::with_capacity(prepared.len());
        for preps in prepared.chunks(batch) {
            let effs: Vec<CommitEffects> = preps.iter().map(|p| p.4.clone()).collect();
            let receipts = self.commit_batch(&effs)?;
            for (p, r) in preps.iter().zip(receipts) {
                out.push(WriteActual {
                    statement_index: p.0,
                    kind: p.1,
                    table: p.2,
                    n_rows: p.3,
                    lsn: r.lsn,
                    measured_cost: r.measured_cost,
                    measured_mv_cost: r.measured_mv_cost,
                    counters: r.counters,
                });
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Read path (delegates to the shared MVCC state)
    // ------------------------------------------------------------------

    /// A snapshot pinned at the current committed watermark.
    pub fn snapshot(&self) -> Snapshot<'_, 'a> {
        self.inner.snapshot()
    }

    /// Pre-fold `table`'s base into the row cache, exactly as
    /// [`Store::warm_for_table`] — the sharded layer shares the inner
    /// store's caches.
    pub fn warm_for_table(&self, table: TableId) -> Result<()> {
        self.inner.warm_for_table(table)
    }

    /// Highest committed LSN.
    pub fn watermark(&self) -> u64 {
        self.inner.watermark()
    }

    /// Running totals — bit-identical to the monolithic store's.
    pub fn totals(&self) -> StoreTotals {
        self.inner.totals()
    }

    /// The committed MV overlay at spec position `pos`.
    pub fn mv_overlay(&self, pos: usize) -> HashMap<Vec<Value>, super::maintain::MvGroupDelta> {
        self.inner.mv_overlay(pos)
    }

    /// Order-insensitive digest of the committed state.
    pub fn state_digest(&self) -> Result<u64> {
        self.inner.state_digest()
    }

    /// Per-shard running counters.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.logs.read().shards.iter().map(|s| s.stats).collect()
    }

    /// The order log's bytes (what would be on disk at the last sync).
    pub fn order_bytes(&self) -> Vec<u8> {
        self.logs.read().order.bytes().to_vec()
    }

    /// One shard's WAL segment bytes.
    pub fn shard_wal_bytes(&self, shard: usize) -> Vec<u8> {
        self.logs.read().shards[shard].wal.bytes().to_vec()
    }

    /// Every shard's WAL segment bytes, in shard order.
    pub fn all_shard_wal_bytes(&self) -> Vec<Vec<u8>> {
        self.logs
            .read()
            .shards
            .iter()
            .map(|s| s.wal.bytes().to_vec())
            .collect()
    }

    /// The order log's sync points.
    pub fn order_sync_points(&self) -> Vec<usize> {
        self.logs.read().order.sync_points().to_vec()
    }

    /// One shard's sync points.
    pub fn shard_sync_points(&self, shard: usize) -> Vec<usize> {
        self.logs.read().shards[shard].wal.sync_points().to_vec()
    }

    /// FNV-1a digest over the whole log set — the order log's raw bytes
    /// and every shard segment's, shard index included. The witness that
    /// batch size and parallelism mode change durability granularity
    /// only, never a single logged byte.
    pub fn wal_frame_digest(&self) -> u64 {
        let logs = self.logs.read();
        let mut h = fnv1a(0xcbf2_9ce4_8422_2325, logs.order.bytes());
        for (s, sh) in logs.shards.iter().enumerate() {
            h = fnv1a(h, &(s as u64).to_le_bytes());
            h = fnv1a(h, sh.wal.bytes());
        }
        h
    }

    /// Snapshot-atomicity check against the sharded log set: re-derive,
    /// from the order log plus the shard frames it references, how many
    /// appended rows each table must show at `lsn`, and compare with what
    /// the shared version chains make visible. A reader mid-commit must
    /// never observe a partially applied cross-shard batch — the commit's
    /// effects hit every shard's chains inside one critical section.
    /// LSNs before the checkpoint anchor are vacuously consistent.
    pub fn snapshot_consistent(&self, lsn: u64) -> Result<bool> {
        let st = self.inner.state.read();
        let logs = self.logs.read();
        if lsn < st.log_anchor {
            return Ok(true);
        }
        let shard_effs = decode_shard_frames(
            &logs
                .shards
                .iter()
                .map(|s| s.wal.bytes().to_vec())
                .collect::<Vec<_>>(),
            Parallelism::Serial,
        )?;
        let order = wal::replay(logs.order.bytes());
        let mut expected: BTreeMap<TableId, i64> = st.anchor_appends.clone();
        for f in &order.frames {
            if f.frame_type != FrameType::Commit || f.lsn > lsn || f.lsn <= st.log_anchor {
                continue;
            }
            let rec = CommitOrderRecord::decode(&f.payload)?;
            let e = expected.entry(TableId(rec.table)).or_default();
            *e += rec.appended_routes.len() as i64;
            for (shard, local) in &rec.entries {
                let Some((sub, _)) = shard_effs
                    .get(*shard as usize)
                    .and_then(|(m, _, _)| m.get(local))
                else {
                    continue;
                };
                for ts in &sub.deleted {
                    if matches!(ts.slot, RowSlot::Appended(_)) {
                        *e -= 1;
                    }
                }
            }
        }
        for (t, want) in expected {
            let got = st.deltas.get(&t).map_or(0, |d| d.appended_at(lsn).count()) as i64;
            if got != want {
                return Ok(false);
            }
        }
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Checkpoint + recovery
    // ------------------------------------------------------------------

    /// Fold the committed deltas into real compressed structures and
    /// truncate **every** log: the order log and each shard segment get a
    /// checkpoint marker (global / shard-local LSN respectively) and drop
    /// their pre-marker history. The artifact is bit-identical to the
    /// monolithic [`Store::checkpoint`] at the same watermark — same
    /// folded leaf bytes, same digest — plus the shard-local LSN counters
    /// recovery resumes the truncated logs from.
    ///
    /// Same epoch-boundary semantics as the monolithic checkpoint: slot
    /// ordinals re-address to the artifact's scan order, deltas reset,
    /// derived caches invalidate.
    pub fn checkpoint(&self) -> Result<ShardedCheckpoint> {
        let _span = obs::span("store.shard.checkpoint");
        let touched: Vec<TableId> = self.inner.state.read().deltas.keys().copied().collect();
        for t in &touched {
            self.inner.base_rows(*t)?;
        }
        let mut st = self.inner.state.write();
        let mut logs = self.logs.write();
        let lsn = st.watermark;
        let mut tables = BTreeMap::new();
        let mut patched_tables = 0usize;
        let mut rebuilt_tables = 0usize;
        for (t, d) in &st.deltas {
            let (ix, patched) = self.inner.fold_table(*t, d, lsn)?;
            if patched {
                patched_tables += 1;
            } else {
                rebuilt_tables += 1;
            }
            tables.insert(*t, ix);
        }
        let marker_lsn = st.next_lsn;
        st.next_lsn += 1;
        let head = logs.order.bytes().len();
        logs.order.append(&WalFrame {
            frame_type: FrameType::Checkpoint,
            lsn: marker_lsn,
            payload: lsn.to_le_bytes().to_vec(),
        });
        let mut truncated_wal_bytes = logs.order.truncate_head(head);
        let mut shard_next_lsns = Vec::with_capacity(logs.shards.len());
        for sh in logs.shards.iter_mut() {
            let h = sh.wal.bytes().len();
            let local = sh.next_lsn;
            sh.next_lsn += 1;
            sh.wal.append(&WalFrame {
                frame_type: FrameType::Checkpoint,
                lsn: local,
                payload: lsn.to_le_bytes().to_vec(),
            });
            truncated_wal_bytes += sh.wal.truncate_head(h);
            sh.stats.wal_bytes = sh.wal.bytes().len() as u64;
            shard_next_lsns.push(sh.next_lsn);
        }
        // Epoch switch, identical to the monolithic checkpoint.
        {
            let mut base_ix = self.inner.base_ix.write();
            for (t, ix) in &tables {
                base_ix.insert(*t, std::sync::Arc::new(ix.clone()));
            }
        }
        {
            let mut rows = self.inner.base_rows.write();
            for t in tables.keys() {
                rows.remove(t);
            }
        }
        self.inner.dim_maps.write().clear();
        self.inner.page_cache.write().entries.clear();
        for (t, ix) in &tables {
            st.deltas
                .insert(*t, super::delta::TableDelta::new(ix.n_rows()));
        }
        st.mod_lsns.clear();
        st.log_anchor = lsn;
        st.anchor_appends = BTreeMap::new();
        obs::counter_add("store.checkpoints", 1);
        obs::counter_add(
            "store.shard.checkpoint.truncated_wal_bytes",
            truncated_wal_bytes as u64,
        );
        Ok(ShardedCheckpoint {
            store: StoreCheckpoint {
                lsn,
                next_lsn: st.next_lsn,
                tables,
                overlays: st.overlays.clone(),
                totals: st.totals,
                patched_tables,
                rebuilt_tables,
                truncated_wal_bytes,
            },
            shard_next_lsns,
        })
    }

    /// Re-apply one reconstructed commit during recovery, re-logging its
    /// shard frames and order record so the recovered log set is exactly
    /// the committed prefix of the crashed one.
    fn replay_commit(
        &self,
        eff: &CommitEffects,
        lsn: u64,
        rec: &CommitOrderRecord,
        shard_effs: &[DecodedShard],
    ) -> Result<()> {
        self.inner.warm_for_table(eff.table)?;
        let base_n = self.inner.base_rows(eff.table)?.len();
        let mono_bytes = (eff.encode().len() + FRAME_HEADER_BYTES) as u64;
        let run = maintain(
            eff,
            &self.inner.specs,
            &self.inner.model,
            self.inner.base_kind(eff.table),
            mono_bytes,
            &|mv, row, col| self.inner.resolve_col(mv, row, col, 0),
        );
        let mut st = self.inner.state.write();
        let mut logs = self.logs.write();
        st.next_lsn = st.next_lsn.max(lsn + 1);
        for (shard, local) in &rec.entries {
            let s = *shard as usize;
            let (sub, _) = &shard_effs[s].0[local];
            let payload = sub.encode();
            let sh = &mut logs.shards[s];
            sh.wal.append(&WalFrame {
                frame_type: FrameType::Commit,
                lsn: *local,
                payload,
            });
            sh.next_lsn = sh.next_lsn.max(local + 1);
            sh.stats.frames += 1;
            sh.stats.rows_routed += sub.n_rows() as u64;
            sh.stats.wal_bytes = sh.wal.bytes().len() as u64;
        }
        logs.order.append(&WalFrame {
            frame_type: FrameType::Commit,
            lsn,
            payload: rec.encode(),
        });
        Store::apply(&mut st, eff, lsn, base_n)?;
        Store::absorb(&mut st, &run, lsn);
        Ok(())
    }

    /// Sharded crash recovery: replay every shard segment **in parallel**
    /// (decode is per-shard independent work), then walk the order log
    /// serially, re-merging each record's per-shard sub-effects into the
    /// original statement effects and applying them in global LSN order.
    /// A record referencing a lost shard frame — a torn shard tail — ends
    /// the committed prefix: it and every later record are discarded.
    pub fn recover(
        db: &'a Database,
        mat: &'a MaterializedConfig,
        model: CostModel,
        spec: ShardSpec,
        order_bytes: &[u8],
        shard_bytes: &[Vec<u8>],
    ) -> Result<(ShardedStore<'a>, ShardedRecoveryReport)> {
        let _span = obs::span("store.shard.recover");
        if shard_bytes.len() != spec.shards {
            return Err(CadbError::InvalidArgument(format!(
                "recover: {} shard logs for a {}-shard spec",
                shard_bytes.len(),
                spec.shards
            )));
        }
        let store = ShardedStore::open(db, mat, model, spec)?;
        let report = store.replay_log_set(order_bytes, shard_bytes, 0)?;
        obs::publish_counters(&report.as_metrics());
        Ok((store, report))
    }

    /// Checkpoint-anchored sharded recovery: install the artifact, resume
    /// every shard's local LSN counter, and replay only the
    /// post-checkpoint tails of the (truncated, possibly torn) log set.
    pub fn recover_with_checkpoint(
        db: &'a Database,
        mat: &'a MaterializedConfig,
        model: CostModel,
        spec: ShardSpec,
        ckpt: &ShardedCheckpoint,
        order_bytes: &[u8],
        shard_bytes: &[Vec<u8>],
    ) -> Result<(ShardedStore<'a>, ShardedRecoveryReport)> {
        let _span = obs::span("store.shard.recover");
        if shard_bytes.len() != spec.shards || ckpt.shard_next_lsns.len() != spec.shards {
            return Err(CadbError::InvalidArgument(format!(
                "recover: {} shard logs / {} checkpoint counters for a {}-shard spec",
                shard_bytes.len(),
                ckpt.shard_next_lsns.len(),
                spec.shards
            )));
        }
        let store = ShardedStore::open(db, mat, model, spec)?;
        {
            let mut base_ix = store.inner.base_ix.write();
            for (t, ix) in &ckpt.store.tables {
                base_ix.insert(*t, std::sync::Arc::new(ix.clone()));
            }
        }
        {
            let mut st = store.inner.state.write();
            st.next_lsn = ckpt.store.next_lsn;
            st.watermark = ckpt.store.lsn;
            st.log_anchor = ckpt.store.lsn;
            st.overlays = ckpt.store.overlays.clone();
            st.totals = ckpt.store.totals;
        }
        for t in ckpt.store.tables.keys() {
            let n = store.inner.base_rows(*t)?.len();
            store
                .inner
                .state
                .write()
                .deltas
                .insert(*t, super::delta::TableDelta::new(n));
        }
        {
            let mut logs = store.logs.write();
            for (sh, next) in logs.shards.iter_mut().zip(&ckpt.shard_next_lsns) {
                sh.next_lsn = *next;
            }
        }
        let report = store.replay_log_set(order_bytes, shard_bytes, ckpt.store.lsn)?;
        obs::publish_counters(&report.as_metrics());
        Ok((store, report))
    }

    /// Shared replay core: parallel per-shard decode, then the serial
    /// order walk. Commits with `lsn <= anchor` are already folded into
    /// the artifact and skipped.
    fn replay_log_set(
        &self,
        order_bytes: &[u8],
        shard_bytes: &[Vec<u8>],
        anchor: u64,
    ) -> Result<ShardedRecoveryReport> {
        let shard_effs = decode_shard_frames(shard_bytes, Parallelism::Auto)?;
        let order = wal::replay(order_bytes);
        let mut commits_applied = 0usize;
        let mut commits_discarded = 0usize;
        let mut checkpoints_seen = 0usize;
        let mut applied_per_shard = vec![0usize; shard_bytes.len()];
        let mut broken = false;
        for f in &order.frames {
            match f.frame_type {
                FrameType::Checkpoint => {
                    checkpoints_seen += 1;
                    let mut st = self.inner.state.write();
                    st.next_lsn = st.next_lsn.max(f.lsn + 1);
                    // Keep the marker so the recovered order log stays a
                    // consistent prefix of the input tail.
                    self.logs.write().order.append(f);
                }
                FrameType::Commit if broken => {
                    commits_discarded += 1;
                }
                FrameType::Commit => {
                    let rec = CommitOrderRecord::decode(&f.payload)?;
                    if f.lsn <= anchor {
                        // Pre-anchor commits are folded into the artifact.
                        continue;
                    }
                    match merge_effects(&rec, &shard_effs) {
                        Some(eff) => {
                            self.replay_commit(&eff, f.lsn, &rec, &shard_effs)?;
                            commits_applied += 1;
                            for (shard, _) in &rec.entries {
                                applied_per_shard[*shard as usize] += 1;
                            }
                        }
                        None => {
                            // A referenced shard frame was torn away (or
                            // disagrees with the routes): the committed
                            // prefix ends here.
                            broken = true;
                            commits_discarded += 1;
                        }
                    }
                }
            }
        }
        // Shard checkpoints seen feed the per-shard reports.
        let per_shard: Vec<RecoveryReport> = shard_effs
            .iter()
            .enumerate()
            .map(|(s, (_, rep, ckpts))| RecoveryReport {
                frames_applied: applied_per_shard[s],
                checkpoints_seen: *ckpts,
                truncated_bytes: rep.0,
                duplicates_skipped: rep.1,
                watermark: self.inner.watermark(),
            })
            .collect();
        Ok(ShardedRecoveryReport {
            per_shard,
            order: RecoveryReport {
                frames_applied: commits_applied,
                checkpoints_seen,
                truncated_bytes: order.truncated_bytes,
                duplicates_skipped: order.duplicates_skipped,
                watermark: self.inner.watermark(),
            },
            commits_discarded,
            watermark: self.inner.watermark(),
        })
    }
}

/// One shard's decoded log: `local LSN → (sub-effects, payload length)`,
/// the segment's `(truncated_bytes, duplicates_skipped)`, and the number
/// of checkpoint markers seen.
type DecodedShard = (HashMap<u64, (CommitEffects, usize)>, (usize, usize), usize);

/// Replay + decode every shard segment, in parallel under `par`.
fn decode_shard_frames(shard_bytes: &[Vec<u8>], par: Parallelism) -> Result<Vec<DecodedShard>> {
    cadb_common::par_map(par, shard_bytes, |_, bytes| {
        let rep = wal::replay(bytes);
        let mut map = HashMap::with_capacity(rep.frames.len());
        let mut checkpoints = 0usize;
        for f in &rep.frames {
            match f.frame_type {
                FrameType::Checkpoint => checkpoints += 1,
                FrameType::Commit => {
                    let eff = CommitEffects::decode(&f.payload)?;
                    map.insert(f.lsn, (eff, f.payload.len()));
                }
            }
        }
        Ok((
            map,
            (rep.truncated_bytes, rep.duplicates_skipped),
            checkpoints,
        ))
    })
    .into_iter()
    .collect()
}

/// Re-interleave an order record's per-shard sub-effects into the
/// original statement effects, following the route bytes. Returns `None`
/// when a referenced frame is missing or the routes disagree with the
/// sub-effects — either way the commit never fully hit disk.
fn merge_effects(rec: &CommitOrderRecord, shards: &[DecodedShard]) -> Option<CommitEffects> {
    let mut subs: HashMap<u32, &CommitEffects> = HashMap::with_capacity(rec.entries.len());
    for (shard, local) in &rec.entries {
        let (eff, _) = shards.get(*shard as usize)?.0.get(local)?;
        if eff.table.0 != rec.table {
            return None;
        }
        subs.insert(*shard, eff);
    }
    let mut cursors: HashMap<u32, (usize, usize, usize)> =
        subs.keys().map(|s| (*s, (0, 0, 0))).collect();
    let mut out = CommitEffects {
        table: TableId(rec.table),
        appended: Vec::with_capacity(rec.appended_routes.len()),
        rewritten: Vec::with_capacity(rec.rewritten_routes.len()),
        deleted: Vec::with_capacity(rec.deleted_routes.len()),
    };
    for &s in &rec.appended_routes {
        let sub = subs.get(&(s as u32))?;
        let c = &mut cursors.get_mut(&(s as u32))?.0;
        out.appended.push(sub.appended.get(*c)?.clone());
        *c += 1;
    }
    for &s in &rec.rewritten_routes {
        let sub = subs.get(&(s as u32))?;
        let c = &mut cursors.get_mut(&(s as u32))?.1;
        out.rewritten.push(sub.rewritten.get(*c)?.clone());
        *c += 1;
    }
    for &s in &rec.deleted_routes {
        let sub = subs.get(&(s as u32))?;
        let c = &mut cursors.get_mut(&(s as u32))?.2;
        out.deleted.push(sub.deleted.get(*c)?.clone());
        *c += 1;
    }
    // Every routed row must be consumed: leftovers mean the routes and
    // the shard frames disagree.
    for (s, (a, r, d)) in &cursors {
        let sub = subs[s];
        if *a != sub.appended.len() || *r != sub.rewritten.len() || *d != sub.deleted.len() {
            return None;
        }
    }
    Some(out)
}
