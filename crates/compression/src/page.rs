//! Page encoder/decoder: composes the per-column codecs into a full
//! compressed page, column-wise, with per-column null bitmaps.
//!
//! Layout:
//! ```text
//! [n_rows: u16][n_cols: u16]
//! per column:
//!   [tag: u8]                       -- actual encoding used (may fall back)
//!   [null bitmap: ceil(n_rows/8)]
//!   [block_len: u32][block bytes]
//! ```
//!
//! For `CompressionKind::GlobalDict` each column independently falls back to
//! ROW (NULL-suppression) encoding when dictionary ids would be larger than
//! the suppressed values — mirroring how real engines apply dictionary
//! encoding only where it pays.

use crate::bytesrepr::{append_value_bytes, value_from_bytes, value_width};
use crate::global_dict::{self, GlobalDictionary};
use crate::method::CompressionKind;
use crate::null_suppress;
use crate::prefix::{self, read_slice, read_u16, read_u32};
use crate::{local_dict, rle};
use cadb_common::{CadbError, DataType, Result, Row, Value};

/// Per-row header bytes in the uncompressed accounting (slot + status).
pub const ROW_HEADER_BYTES: usize = 4;

/// Everything the page codec needs to know about its environment.
#[derive(Debug, Clone, Copy)]
pub struct PageContext<'a> {
    /// Column types, in stored order.
    pub dtypes: &'a [DataType],
    /// Compression method for the whole page.
    pub kind: CompressionKind,
    /// Per-column global dictionaries; required when `kind == GlobalDict`.
    pub global_dicts: Option<&'a [GlobalDictionary]>,
}

/// A compressed page plus its uncompressed-footprint accounting.
#[derive(Debug, Clone)]
pub struct EncodedPage {
    /// The encoded bytes (this *is* the measured compressed size).
    pub bytes: Vec<u8>,
    /// Number of rows stored.
    pub n_rows: usize,
    /// What the same rows would occupy uncompressed (row headers + null
    /// bitmap + canonical value bytes).
    pub uncompressed_bytes: usize,
}

impl EncodedPage {
    /// Compression fraction of this page (compressed / uncompressed).
    pub fn compression_fraction(&self) -> f64 {
        if self.uncompressed_bytes == 0 {
            1.0
        } else {
            self.bytes.len() as f64 / self.uncompressed_bytes as f64
        }
    }
}

/// Column encoding tags, stored per column in the page. Public so that
/// executors operating directly on encoded pages (see `cadb-exec`) can
/// dispatch on the physical encoding each column actually used — which may
/// differ from the page's [`CompressionKind`] (e.g. the GDICT → NS
/// fallback).
pub mod tag {
    /// Raw canonical value bytes, back to back.
    pub const PLAIN: u8 = 0;
    /// NULL-suppressed values, each with a 2-byte length prefix.
    pub const NS: u8 = 1;
    /// The PAGE pipeline: anchor + prefix suppression + local dictionary.
    pub const PAGE: u8 = 2;
    /// Index-wide dictionary ids.
    pub const GDICT: u8 = 3;
    /// Run-length encoded NULL-suppressed values.
    pub const RLE: u8 = 4;
}

/// Borrowed view of one column's encoded section within a page: the tag it
/// was actually stored with, its null bitmap and its value block. Produced
/// by [`column_sections`]; the executor's per-column vectors are built from
/// this without decoding the whole page.
#[derive(Debug, Clone, Copy)]
pub struct ColumnSection<'a> {
    /// Actual encoding of the block (one of the [`tag`] constants).
    pub tag: u8,
    /// Null bitmap, one bit per row (bit set = NULL).
    pub bitmap: &'a [u8],
    /// The encoded value block (non-null values only).
    pub block: &'a [u8],
}

impl ColumnSection<'_> {
    /// Number of non-NULL values in the first `n_rows` rows.
    pub fn n_non_null(&self, n_rows: usize) -> usize {
        (0..n_rows)
            .filter(|i| self.bitmap[i / 8] & (1 << (i % 8)) == 0)
            .count()
    }

    /// `true` when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        self.bitmap[i / 8] & (1 << (i % 8)) != 0
    }
}

/// Split an encoded page into its per-column sections without decoding any
/// values. Returns `(n_rows, sections)`; this is the page cursor the
/// vectorized executor walks.
pub fn column_sections(bytes: &[u8]) -> Result<(usize, Vec<ColumnSection<'_>>)> {
    let mut pos = 0usize;
    let n = read_u16(bytes, &mut pos)? as usize;
    let n_cols = read_u16(bytes, &mut pos)? as usize;
    let mut sections = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let used_tag = *bytes
            .get(pos)
            .ok_or_else(|| CadbError::Storage("page truncated at tag".into()))?;
        pos += 1;
        let bitmap = read_slice(bytes, &mut pos, n.div_ceil(8))?;
        let block_len = read_u32(bytes, &mut pos)? as usize;
        let block = read_slice(bytes, &mut pos, block_len)?;
        sections.push(ColumnSection {
            tag: used_tag,
            bitmap,
            block,
        });
    }
    Ok((n, sections))
}

/// Split a [`tag::PAGE`] column block into its `(anchor, local-dict block)`
/// parts. Each dictionary entry / literal in the sub-block is a
/// prefix-encoded, NULL-suppressed value against the anchor.
pub fn split_page_block(block: &[u8]) -> Result<(&[u8], &[u8])> {
    let mut pos = 0usize;
    let anchor_len = read_u16(block, &mut pos)? as usize;
    let anchor = read_slice(block, &mut pos, anchor_len)?;
    Ok((anchor, &block[pos..]))
}

/// Encode one page of rows.
///
/// All rows must have arity `ctx.dtypes.len()`. Returns an error when
/// `GlobalDict` is requested without dictionaries.
pub fn encode_page(rows: &[Row], ctx: &PageContext<'_>) -> Result<EncodedPage> {
    let n = rows.len();
    if n > u16::MAX as usize {
        return Err(CadbError::InvalidArgument(format!(
            "page cannot hold {n} rows"
        )));
    }
    let n_cols = ctx.dtypes.len();
    let mut uncompressed = 0usize;
    for r in rows {
        if r.arity() != n_cols {
            return Err(CadbError::Schema(format!(
                "row arity {} != page arity {n_cols}",
                r.arity()
            )));
        }
        uncompressed += ROW_HEADER_BYTES + n_cols.div_ceil(8);
        for (v, t) in r.values.iter().zip(ctx.dtypes) {
            uncompressed += value_width(v, t);
        }
    }

    let mut out = Vec::new();
    out.extend_from_slice(&(n as u16).to_le_bytes());
    out.extend_from_slice(&(n_cols as u16).to_le_bytes());

    for (c, dtype) in ctx.dtypes.iter().enumerate() {
        // Null bitmap + the canonical bytes of non-null values.
        let mut bitmap = vec![0u8; n.div_ceil(8)];
        let mut canon: Vec<Vec<u8>> = Vec::with_capacity(n);
        for (i, r) in rows.iter().enumerate() {
            let v = &r.values[c];
            if v.is_null() {
                bitmap[i / 8] |= 1 << (i % 8);
            } else {
                let mut b = Vec::new();
                append_value_bytes(v, dtype, &mut b);
                canon.push(b);
            }
        }

        let (used_tag, block) = encode_column(&canon, dtype, ctx, c)?;
        out.push(used_tag);
        out.extend_from_slice(&bitmap);
        out.extend_from_slice(&(block.len() as u32).to_le_bytes());
        out.extend_from_slice(&block);
    }

    Ok(EncodedPage {
        bytes: out,
        n_rows: n,
        uncompressed_bytes: uncompressed,
    })
}

fn encode_column(
    canon: &[Vec<u8>],
    dtype: &DataType,
    ctx: &PageContext<'_>,
    col: usize,
) -> Result<(u8, Vec<u8>)> {
    match ctx.kind {
        CompressionKind::None => {
            let mut block = Vec::new();
            for v in canon {
                block.extend_from_slice(v);
            }
            Ok((tag::PLAIN, block))
        }
        CompressionKind::Row => Ok((tag::NS, encode_ns_block(canon, dtype))),
        CompressionKind::Page => {
            // ROW-compress first, then prefix against the anchor, then the
            // page-local dictionary — the SQL Server PAGE pipeline (App. A.1).
            let ns: Vec<Vec<u8>> = canon
                .iter()
                .map(|v| null_suppress::suppress(v, dtype))
                .collect();
            let anchor = prefix::choose_anchor(&ns);
            let prefixed: Vec<Vec<u8>> =
                ns.iter().map(|v| prefix::encode_one(&anchor, v)).collect();
            let dict_block = local_dict::encode(&prefixed);
            let mut block = Vec::with_capacity(anchor.len() + 2 + dict_block.len());
            block.extend_from_slice(&(anchor.len() as u16).to_le_bytes());
            block.extend_from_slice(&anchor);
            block.extend_from_slice(&dict_block);
            Ok((tag::PAGE, block))
        }
        CompressionKind::GlobalDict => {
            let dicts = ctx.global_dicts.ok_or_else(|| {
                CadbError::InvalidArgument(
                    "GlobalDict compression requires per-column dictionaries".into(),
                )
            })?;
            let dict = dicts.get(col).ok_or_else(|| {
                CadbError::InvalidArgument(format!("no global dictionary for column {col}"))
            })?;
            let gd_block = global_dict::encode(canon, dict)?;
            let ns_block = encode_ns_block(canon, dtype);
            if gd_block.len() < ns_block.len() {
                Ok((tag::GDICT, gd_block))
            } else {
                Ok((tag::NS, ns_block))
            }
        }
        CompressionKind::Rle => {
            let ns: Vec<Vec<u8>> = canon
                .iter()
                .map(|v| null_suppress::suppress(v, dtype))
                .collect();
            Ok((tag::RLE, rle::encode(&ns)))
        }
    }
}

fn encode_ns_block(canon: &[Vec<u8>], dtype: &DataType) -> Vec<u8> {
    let mut block = Vec::new();
    for v in canon {
        let s = null_suppress::suppress(v, dtype);
        block.extend_from_slice(&(s.len() as u16).to_le_bytes());
        block.extend_from_slice(&s);
    }
    block
}

/// Decode a page produced by [`encode_page`].
pub fn decode_page(bytes: &[u8], ctx: &PageContext<'_>) -> Result<Vec<Row>> {
    let (n, sections) = column_sections(bytes)?;
    if sections.len() != ctx.dtypes.len() {
        return Err(CadbError::Schema(format!(
            "page has {} columns, context has {}",
            sections.len(),
            ctx.dtypes.len()
        )));
    }
    let mut columns: Vec<Vec<Value>> = Vec::with_capacity(sections.len());
    for (c, (sec, dtype)) in sections.iter().zip(ctx.dtypes).enumerate() {
        let n_non_null = sec.n_non_null(n);
        let canon = decode_column_values(sec.block, sec.tag, dtype, ctx, c, n_non_null)?;
        if canon.len() != n_non_null {
            return Err(CadbError::Storage(format!(
                "column {c}: decoded {} values, expected {n_non_null}",
                canon.len()
            )));
        }
        let mut vals = Vec::with_capacity(n);
        let mut it = canon.into_iter();
        for i in 0..n {
            if sec.is_null(i) {
                vals.push(Value::Null);
            } else {
                let b = it.next().expect("counted above");
                vals.push(value_from_bytes(&b, dtype)?);
            }
        }
        columns.push(vals);
    }
    // Transpose columns back into rows.
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        rows.push(Row::new(
            columns
                .iter_mut()
                .map(|col| std::mem::replace(&mut col[i], Value::Null))
                .collect(),
        ));
    }
    Ok(rows)
}

/// Decode one column block back into the canonical bytes of its non-null
/// values. `used_tag` is the section's actual encoding (a [`tag`]
/// constant), `col` the column ordinal (needed for GDICT dictionaries).
pub fn decode_column_values(
    block: &[u8],
    used_tag: u8,
    dtype: &DataType,
    ctx: &PageContext<'_>,
    col: usize,
    n_non_null: usize,
) -> Result<Vec<Vec<u8>>> {
    match used_tag {
        tag::PLAIN => decode_plain_block(block, dtype, n_non_null),
        tag::NS => {
            let mut pos = 0usize;
            let mut out = Vec::with_capacity(n_non_null);
            for _ in 0..n_non_null {
                let len = read_u16(block, &mut pos)? as usize;
                let s = read_slice(block, &mut pos, len)?;
                out.push(null_suppress::expand(s, dtype));
            }
            Ok(out)
        }
        tag::PAGE => {
            let (anchor, dict_block) = split_page_block(block)?;
            let prefixed = local_dict::decode(dict_block)?;
            prefixed
                .iter()
                .map(|enc| {
                    let ns = prefix::decode_one(anchor, enc)?;
                    Ok(null_suppress::expand(&ns, dtype))
                })
                .collect()
        }
        tag::GDICT => {
            let dicts = ctx.global_dicts.ok_or_else(|| {
                CadbError::InvalidArgument("decoding GDICT page requires dictionaries".into())
            })?;
            let dict = dicts
                .get(col)
                .ok_or_else(|| CadbError::Storage(format!("no dictionary for column {col}")))?;
            global_dict::decode(block, dict)
        }
        tag::RLE => {
            let ns = rle::decode(block)?;
            Ok(ns.iter().map(|s| null_suppress::expand(s, dtype)).collect())
        }
        other => Err(CadbError::Storage(format!("unknown column tag {other}"))),
    }
}

/// Bounded (range) decode of one column block: the canonical bytes of only
/// the non-null values at positions `range` of the column's value stream,
/// without materializing the values outside it.
///
/// This is the decode primitive behind key-range scans: an executor that
/// has already located the leaf rows it cares about (e.g. the boundary
/// leaves of a B+Tree seek) can decode just those positions. How much work
/// is skipped depends on the codec — fixed-width PLAIN blocks slice
/// directly, RLE skips whole runs without expanding them, dictionary
/// codecs (PAGE / GDICT) decode only the dictionary entries the requested
/// codes reference — while variable-width streams (NS, VARCHAR PLAIN)
/// still walk length prefixes up to `range.end` but skip value expansion
/// outside the range.
pub fn decode_column_values_range(
    block: &[u8],
    used_tag: u8,
    dtype: &DataType,
    ctx: &PageContext<'_>,
    col: usize,
    n_non_null: usize,
    range: std::ops::Range<usize>,
) -> Result<Vec<Vec<u8>>> {
    let lo = range.start.min(n_non_null);
    let hi = range.end.min(n_non_null);
    if lo >= hi {
        return Ok(Vec::new());
    }
    match used_tag {
        tag::PLAIN => {
            if matches!(dtype, DataType::Varchar { .. }) {
                // Variable width: walk the length prefixes, expand in range.
                let mut pos = 0usize;
                let mut out = Vec::with_capacity(hi - lo);
                for i in 0..hi {
                    let len = read_u16(block, &mut pos)? as usize;
                    pos -= 2;
                    let s = read_slice(block, &mut pos, len + 2)?;
                    if i >= lo {
                        out.push(s.to_vec());
                    }
                }
                Ok(out)
            } else {
                let w = dtype.fixed_width();
                let mut pos = lo * w;
                let mut out = Vec::with_capacity(hi - lo);
                for _ in lo..hi {
                    out.push(read_slice(block, &mut pos, w)?.to_vec());
                }
                Ok(out)
            }
        }
        tag::NS => {
            let mut pos = 0usize;
            let mut out = Vec::with_capacity(hi - lo);
            for i in 0..hi {
                let len = read_u16(block, &mut pos)? as usize;
                let s = read_slice(block, &mut pos, len)?;
                if i >= lo {
                    out.push(crate::null_suppress::expand(s, dtype));
                }
            }
            Ok(out)
        }
        tag::PAGE => {
            let (anchor, dict_block) = split_page_block(block)?;
            let (raw_dict, tokens) = local_dict::decode_parts(dict_block)?;
            // Decode dictionary entries lazily: only slots the requested
            // token range references are prefix-expanded.
            let mut decoded: Vec<Option<Vec<u8>>> = vec![None; raw_dict.len()];
            let mut out = Vec::with_capacity(hi - lo);
            for t in tokens.into_iter().take(hi).skip(lo) {
                let enc = match t {
                    local_dict::Token::Code(c) => {
                        let c = c as usize;
                        if decoded[c].is_none() {
                            let ns = prefix::decode_one(anchor, &raw_dict[c])?;
                            decoded[c] = Some(crate::null_suppress::expand(&ns, dtype));
                        }
                        decoded[c].clone().expect("filled above")
                    }
                    local_dict::Token::Literal(enc) => {
                        let ns = prefix::decode_one(anchor, &enc)?;
                        crate::null_suppress::expand(&ns, dtype)
                    }
                };
                out.push(enc);
            }
            Ok(out)
        }
        tag::GDICT => {
            let dicts = ctx.global_dicts.ok_or_else(|| {
                CadbError::InvalidArgument("decoding GDICT page requires dictionaries".into())
            })?;
            let dict = dicts
                .get(col)
                .ok_or_else(|| CadbError::Storage(format!("no dictionary for column {col}")))?;
            let ids = global_dict::decode_ids(block)?;
            ids.into_iter()
                .take(hi)
                .skip(lo)
                .map(|id| {
                    dict.entry(id)
                        .map(<[u8]>::to_vec)
                        .ok_or_else(|| CadbError::Storage(format!("gdict id {id} out of range")))
                })
                .collect()
        }
        tag::RLE => {
            // Skip whole runs before the range without expanding them.
            let mut seen = 0usize;
            let mut out = Vec::with_capacity(hi - lo);
            for run in rle::runs(block)? {
                let (len, ns) = run?;
                let run_lo = seen;
                seen += len;
                if seen <= lo {
                    continue;
                }
                let v = crate::null_suppress::expand(ns, dtype);
                let take = seen.min(hi) - run_lo.max(lo);
                out.extend(std::iter::repeat_n(v, take));
                if seen >= hi {
                    break;
                }
            }
            Ok(out)
        }
        other => Err(CadbError::Storage(format!("unknown column tag {other}"))),
    }
}

fn decode_plain_block(block: &[u8], dtype: &DataType, n: usize) -> Result<Vec<Vec<u8>>> {
    let mut out = Vec::with_capacity(n);
    let mut pos = 0usize;
    match dtype {
        DataType::Varchar { .. } => {
            for _ in 0..n {
                let len = read_u16(block, &mut pos)? as usize;
                pos -= 2; // value_from_bytes expects the length prefix too
                let s = read_slice(block, &mut pos, len + 2)?;
                out.push(s.to_vec());
            }
        }
        _ => {
            let w = dtype.fixed_width();
            for _ in 0..n {
                out.push(read_slice(block, &mut pos, w)?.to_vec());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadb_common::Value;

    fn dtypes() -> Vec<DataType> {
        vec![
            DataType::Int,
            DataType::Char { len: 10 },
            DataType::Varchar { max_len: 20 },
            DataType::Date,
        ]
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i as i64 % 16),
                    Value::Str(format!("st{}", i % 4)),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Str(format!("comment {}", i % 3))
                    },
                    Value::Int(10_000 + (i as i64 % 30)),
                ])
            })
            .collect()
    }

    fn roundtrip(kind: CompressionKind) -> EncodedPage {
        let d = dtypes();
        let rs = rows(200);
        let dicts: Vec<GlobalDictionary> = (0..d.len())
            .map(|c| {
                GlobalDictionary::build(
                    rs.iter()
                        .filter(|r| !r.values[c].is_null())
                        .map(|r| crate::bytesrepr::value_bytes(&r.values[c], &d[c]))
                        .collect::<Vec<_>>()
                        .iter()
                        .map(|v| v.as_slice()),
                )
            })
            .collect();
        let ctx = PageContext {
            dtypes: &d,
            kind,
            global_dicts: Some(&dicts),
        };
        let page = encode_page(&rs, &ctx).unwrap();
        assert_eq!(decode_page(&page.bytes, &ctx).unwrap(), rs, "{kind}");
        page
    }

    #[test]
    fn all_methods_round_trip() {
        for kind in [CompressionKind::None, CompressionKind::Row]
            .into_iter()
            .chain(CompressionKind::ALL_COMPRESSED)
        {
            roundtrip(kind);
        }
    }

    #[test]
    fn compression_actually_compresses() {
        let plain = roundtrip(CompressionKind::None);
        for kind in CompressionKind::ALL_COMPRESSED {
            let page = roundtrip(kind);
            assert!(
                page.bytes.len() < plain.bytes.len(),
                "{kind}: {} !< {}",
                page.bytes.len(),
                plain.bytes.len()
            );
            assert!(page.compression_fraction() < 1.0, "{kind}");
        }
    }

    #[test]
    fn page_beats_row_on_repetitive_data() {
        // Low-cardinality repeated strings: the dictionary stage must win
        // over plain NULL suppression.
        let row = roundtrip(CompressionKind::Row);
        let page = roundtrip(CompressionKind::Page);
        assert!(page.bytes.len() < row.bytes.len());
    }

    #[test]
    fn empty_page() {
        let d = dtypes();
        let ctx = PageContext {
            dtypes: &d,
            kind: CompressionKind::Row,
            global_dicts: None,
        };
        let page = encode_page(&[], &ctx).unwrap();
        assert_eq!(page.n_rows, 0);
        assert_eq!(page.uncompressed_bytes, 0);
        assert!(decode_page(&page.bytes, &ctx).unwrap().is_empty());
    }

    #[test]
    fn column_sections_expose_layout_without_decoding() {
        let d = dtypes();
        let rs = rows(100);
        let ctx = PageContext {
            dtypes: &d,
            kind: CompressionKind::Rle,
            global_dicts: None,
        };
        let page = encode_page(&rs, &ctx).unwrap();
        let (n, sections) = column_sections(&page.bytes).unwrap();
        assert_eq!(n, 100);
        assert_eq!(sections.len(), d.len());
        for sec in &sections {
            assert_eq!(sec.tag, tag::RLE);
        }
        // Column 2 has NULLs every 7th row.
        assert!(sections[2].n_non_null(n) < n);
        assert!(sections[2].is_null(0));
        // Decoding a single section reproduces that column of the rows.
        let canon =
            decode_column_values(sections[0].block, sections[0].tag, &d[0], &ctx, 0, n).unwrap();
        assert_eq!(canon.len(), n);
        assert_eq!(
            value_from_bytes(&canon[5], &d[0]).unwrap(),
            rs[5].values[0].clone()
        );
    }

    #[test]
    fn range_decode_equals_full_decode_sliced_for_every_codec() {
        let d = dtypes();
        let rs = rows(200);
        let dicts: Vec<GlobalDictionary> = (0..d.len())
            .map(|c| {
                GlobalDictionary::build(
                    rs.iter()
                        .filter(|r| !r.values[c].is_null())
                        .map(|r| crate::bytesrepr::value_bytes(&r.values[c], &d[c]))
                        .collect::<Vec<_>>()
                        .iter()
                        .map(|v| v.as_slice()),
                )
            })
            .collect();
        for kind in [CompressionKind::None, CompressionKind::Row]
            .into_iter()
            .chain(CompressionKind::ALL_COMPRESSED)
        {
            let ctx = PageContext {
                dtypes: &d,
                kind,
                global_dicts: Some(&dicts),
            };
            let page = encode_page(&rs, &ctx).unwrap();
            let (n, sections) = column_sections(&page.bytes).unwrap();
            for (c, sec) in sections.iter().enumerate() {
                let n_nn = sec.n_non_null(n);
                let full = decode_column_values(sec.block, sec.tag, &d[c], &ctx, c, n_nn).unwrap();
                for range in [0..0, 0..1, 0..n_nn, 3..17, n_nn.saturating_sub(1)..n_nn] {
                    let part = decode_column_values_range(
                        sec.block,
                        sec.tag,
                        &d[c],
                        &ctx,
                        c,
                        n_nn,
                        range.clone(),
                    )
                    .unwrap();
                    assert_eq!(part, full[range.clone()], "{kind} col {c} {range:?}");
                }
                // Out-of-bounds ranges clamp instead of erroring.
                let over = decode_column_values_range(
                    sec.block,
                    sec.tag,
                    &d[c],
                    &ctx,
                    c,
                    n_nn,
                    n_nn..n_nn + 10,
                )
                .unwrap();
                assert!(over.is_empty(), "{kind} col {c}");
            }
        }
    }

    #[test]
    fn gdict_without_dicts_errors() {
        let d = dtypes();
        let ctx = PageContext {
            dtypes: &d,
            kind: CompressionKind::GlobalDict,
            global_dicts: None,
        };
        assert!(encode_page(&rows(3), &ctx).is_err());
    }

    #[test]
    fn arity_mismatch_errors() {
        let d = dtypes();
        let ctx = PageContext {
            dtypes: &d,
            kind: CompressionKind::Row,
            global_dicts: None,
        };
        assert!(encode_page(&[Row::new(vec![Value::Int(1)])], &ctx).is_err());
    }

    #[test]
    fn uncompressed_accounting_matches_widths() {
        let d = vec![DataType::Int, DataType::Char { len: 6 }];
        let rs = vec![
            Row::new(vec![Value::Int(1), Value::Str("ab".into())]),
            Row::new(vec![Value::Int(2), Value::Str("cd".into())]),
        ];
        let ctx = PageContext {
            dtypes: &d,
            kind: CompressionKind::None,
            global_dicts: None,
        };
        let page = encode_page(&rs, &ctx).unwrap();
        // Per row: 4 header + 1 bitmap + 8 int + 6 char = 19.
        assert_eq!(page.uncompressed_bytes, 38);
    }
}
