//! Meta-tests of the shrinking runner: known-failing properties (defined
//! *without* `#[test]` so they can be invoked and caught here) must report
//! a **locally minimal** counterexample, not the first random failure.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Fails for every x ≥ 57; the minimal counterexample is exactly 57.
    fn failing_int_property(x in 0i64..1000) {
        prop_assert!(x < 57, "x was {}", x);
    }

    // Fails whenever the vector has ≥ 3 elements; minimal case is any
    // 3-element vector of zeros (length shrinks + element shrinks).
    fn failing_vec_property(v in proptest::collection::vec(0u8..250, 0..40)) {
        prop_assert!(v.len() < 3);
    }

    // Fails when both coordinates are large; shrinking must minimize each
    // component while keeping the conjunction failing.
    fn failing_tuple_property(a in 0i64..500, b in 0i64..500) {
        prop_assert!(a < 40 || b < 25);
    }

    // Passes everywhere — the runner must not report anything.
    fn passing_property(x in 0i64..10) {
        prop_assert!(x < 10);
    }

    // prop_map shrinks through its pre-image tree: fails for v ≥ 114,
    // i.e. inner x ≥ 57; the minimal counterexample is v = 114 exactly.
    fn failing_mapped_property(v in (0i64..1000).prop_map(|x| x * 2)) {
        prop_assert!(v < 114, "v was {}", v);
    }

    // A mapped tuple: each mapped component must minimize independently
    // while the conjunction keeps failing (a = 3·30, b = 23 + 7).
    fn failing_mapped_pair_property(
        (a, b) in (0i64..500, 0i64..500).prop_map(|(a, b)| (a * 3, b + 7))
    ) {
        prop_assert!(a < 90 || b < 30);
    }

    // A vector of mapped elements: length shrinks and element shrinks
    // both flow through the element strategy's tree.
    fn failing_mapped_vec_property(
        v in proptest::collection::vec((0u16..300).prop_map(|x| x * 2), 0..12)
    ) {
        prop_assert!(v.len() < 2);
    }

    // String pattern shrinking: fails when len ≥ 4; the minimal case is
    // the 4-char string of the class's simplest character.
    fn failing_string_property(s in "[a-z]{2,8}") {
        prop_assert!(s.len() < 4, "s was {:?}", s);
    }

    // Multi-piece pattern: the literal prefix "ab" must survive shrinking
    // (candidates are re-validated against the pattern), so the minimal
    // failing string keeps the prefix and minimizes only the digits.
    fn failing_multipiece_string_property(s in "ab[0-9]{1,6}") {
        prop_assert!(s.len() < 5, "s was {:?}", s);
    }
}

fn failure_message(f: impl Fn() + std::panic::UnwindSafe) -> String {
    let payload = std::panic::catch_unwind(f).expect_err("property should fail");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("string panic payload")
}

#[test]
fn failing_property_reports_the_minimal_case() {
    let msg = failure_message(failing_int_property);
    assert!(
        msg.contains("minimal failing input"),
        "no shrink report: {msg}"
    );
    // Binary search over 0..1000 must land exactly on the boundary.
    assert!(
        msg.contains("(57,)"),
        "counterexample not minimized to 57: {msg}"
    );
    // The minimal case's own assertion message is carried along.
    assert!(msg.contains("x was 57"), "{msg}");
}

#[test]
fn failing_vec_property_minimizes_length_and_elements() {
    let msg = failure_message(failing_vec_property);
    assert!(msg.contains("minimal failing input"), "{msg}");
    assert!(
        msg.contains("([0, 0, 0],)"),
        "vector not minimized to three zeros: {msg}"
    );
}

#[test]
fn failing_tuple_property_minimizes_both_components() {
    let msg = failure_message(failing_tuple_property);
    assert!(msg.contains("minimal failing input"), "{msg}");
    assert!(
        msg.contains("(40, 25)"),
        "tuple not minimized to the boundary (40, 25): {msg}"
    );
}

#[test]
fn passing_property_stays_silent() {
    passing_property();
}

#[test]
fn mapped_property_shrinks_through_the_map() {
    let msg = failure_message(failing_mapped_property);
    assert!(msg.contains("minimal failing input"), "{msg}");
    // x shrinks to 57 through the map, so the reported value is 114.
    assert!(
        msg.contains("(114,)"),
        "mapped value not minimized to 114: {msg}"
    );
    assert!(msg.contains("v was 114"), "{msg}");
}

#[test]
fn mapped_pair_minimizes_both_components() {
    let msg = failure_message(failing_mapped_pair_property);
    assert!(msg.contains("minimal failing input"), "{msg}");
    assert!(
        msg.contains("((90, 30),)"),
        "mapped pair not minimized to (90, 30): {msg}"
    );
}

#[test]
fn mapped_vec_minimizes_length_and_elements() {
    let msg = failure_message(failing_mapped_vec_property);
    assert!(msg.contains("minimal failing input"), "{msg}");
    assert!(
        msg.contains("([0, 0],)"),
        "mapped vector not minimized to two zeros: {msg}"
    );
}

#[test]
fn string_property_minimizes_length_and_characters() {
    let msg = failure_message(failing_string_property);
    assert!(msg.contains("minimal failing input"), "{msg}");
    assert!(
        msg.contains("(\"aaaa\",)"),
        "string not minimized to \"aaaa\": {msg}"
    );
}

#[test]
fn multipiece_string_shrinks_stay_in_language() {
    let msg = failure_message(failing_multipiece_string_property);
    assert!(msg.contains("minimal failing input"), "{msg}");
    // The minimal failing string is 5 chars: the mandatory "ab" literal
    // plus three of the digit class's simplest character.
    assert!(
        msg.contains("(\"ab000\",)"),
        "multi-piece string not minimized in-language to \"ab000\": {msg}"
    );
}
