//! Distinct-value estimators.
//!
//! Given frequency statistics from a uniform random sample of `r` rows out
//! of `n`, estimate the number of distinct values in the full population.
//! These drive the paper's MV row-count estimation (Appendix B.3, Table 1):
//!
//! * [`naive_scaleup`] — the paper's **Multiply** baseline: scale observed
//!   distinct count by `1/f`. Overestimates wildly when values repeat.
//! * [`gee`] — the Guaranteed-Error Estimator of Charikar et al. \[6\].
//! * [`adaptive_estimator`] — the Adaptive Estimator (AE) of \[6\], which
//!   splits values into high-frequency (reliably seen in the sample) and
//!   low-frequency classes and corrects the low-frequency class with a
//!   Poisson model matched on `f1`/`f2`. Under the Poisson model the unseen
//!   mass is `f0 = f1² / (2·f2)`, which is what the moment match yields.

use crate::freq::FrequencyVector;

/// The paper's "Multiply" baseline: `d / f` where `f = r / n`.
///
/// Correct only when every value appears at most once in the population —
/// for grouped MVs this is the method with 379 % average error in Table 1.
pub fn naive_scaleup(f: &FrequencyVector, r: u64, n: u64) -> f64 {
    let d = f.distinct() as f64;
    if r == 0 {
        return 0.0;
    }
    d * n as f64 / r as f64
}

/// Guaranteed-Error Estimator (GEE): `sqrt(n/r)·f1 + Σ_{k≥2} f_k`.
pub fn gee(f: &FrequencyVector, r: u64, n: u64) -> f64 {
    if r == 0 {
        return 0.0;
    }
    let f1 = f.f(1) as f64;
    let rest: f64 = f
        .iter_sorted()
        .iter()
        .filter(|(k, _)| *k >= 2)
        .map(|(_, fk)| *fk as f64)
        .sum();
    ((n as f64 / r as f64).sqrt() * f1 + rest).clamp(f.distinct() as f64, n as f64)
}

/// Adaptive Estimator (AE) after Charikar, Chaudhuri, Motwani, Narasayya \[6\].
///
/// Inputs mirror the paper's `AdaptiveEstimator(f, d, r, n)` call
/// (Appendix B.3): frequency statistics `f`, observed distinct `d` (read
/// from `f`), sample size `r` and population size `n`.
///
/// High-frequency values (large sample counts) are almost surely observed
/// and contribute through `d` directly. The low-frequency class — exactly
/// the values behind `f1` and `f2` — has sample frequencies approximately
/// Poisson(λ); matching the first two moments gives `λ̂ = 2·f2/f1`, under
/// which the unseen count is `f0 = f1²/(2·f2)` (the Poisson moment match;
/// for a homogeneous Poisson class this is unbiased). When `f2 = 0` we use
/// the bias-corrected form `f1·(f1−1)/2`.
///
/// The estimate is clamped to `[d, n]` — there cannot be fewer distinct
/// values than observed, nor more than rows.
pub fn adaptive_estimator(f: &FrequencyVector, r: u64, n: u64) -> f64 {
    let d = f.distinct() as f64;
    if r == 0 || d == 0.0 {
        return 0.0;
    }
    if r >= n {
        return d;
    }
    let f1 = f.f(1) as f64;
    let f2 = f.f(2) as f64;
    let unseen = if f1 == 0.0 {
        0.0
    } else if f2 > 0.0 {
        f1 * f1 / (2.0 * f2)
    } else {
        f1 * (f1 - 1.0) / 2.0
    };
    (d + unseen).clamp(d, n as f64)
}

/// Relative error of an estimate versus the truth, as used in Table 1:
/// `|est − true| / true`.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadb_common::rng::rng_for;
    use cadb_common::Value;
    use rand::seq::SliceRandom;

    /// Sample `r` of `n` population values (without replacement) and return
    /// (frequency vector, truth).
    fn sample_population(pop: &[i64], r: usize, seed: u64) -> (FrequencyVector, u64) {
        let mut rng = rng_for(seed, "distinct-test");
        let mut idx: Vec<usize> = (0..pop.len()).collect();
        idx.shuffle(&mut rng);
        let sample: Vec<Value> = idx[..r].iter().map(|&i| Value::Int(pop[i])).collect();
        let truth = {
            let mut v: Vec<i64> = pop.to_vec();
            v.sort_unstable();
            v.dedup();
            v.len() as u64
        };
        (FrequencyVector::from_values(&sample), truth)
    }

    /// Population where each of `d` values appears `c` times.
    fn uniform_population(d: usize, c: usize) -> Vec<i64> {
        (0..d)
            .flat_map(|v| std::iter::repeat_n(v as i64, c))
            .collect()
    }

    #[test]
    fn ae_beats_multiply_on_grouped_data() {
        // ~2000 distinct dates each appearing ~30 times (the paper's MV2
        // scenario): Multiply must overestimate badly, AE should be close.
        let pop = uniform_population(2000, 30);
        let n = pop.len() as u64;
        let r = (n / 100) * 5; // 5% sample
        let (f, truth) = sample_population(&pop, r as usize, 1);
        let ae = adaptive_estimator(&f, r, n);
        let mult = naive_scaleup(&f, r, n);
        let ae_err = relative_error(ae, truth as f64);
        let mult_err = relative_error(mult, truth as f64);
        assert!(ae_err < 0.25, "AE error {ae_err}");
        assert!(mult_err > 1.0, "Multiply error {mult_err}");
        assert!(ae_err < mult_err / 4.0);
    }

    #[test]
    fn ae_exact_when_sample_is_population() {
        let pop = uniform_population(100, 7);
        let n = pop.len() as u64;
        let (f, truth) = sample_population(&pop, n as usize, 2);
        assert_eq!(adaptive_estimator(&f, n, n), truth as f64);
    }

    #[test]
    fn multiply_fine_when_all_unique() {
        // All-unique population: Multiply is actually the right answer.
        let pop: Vec<i64> = (0..10_000).collect();
        let (f, truth) = sample_population(&pop, 500, 3);
        let m = naive_scaleup(&f, 500, 10_000);
        assert!(relative_error(m, truth as f64) < 0.01);
    }

    #[test]
    fn gee_between_d_and_n() {
        let pop = uniform_population(500, 20);
        let n = pop.len() as u64;
        let (f, _) = sample_population(&pop, 400, 4);
        let g = gee(&f, 400, n);
        assert!(g >= f.distinct() as f64);
        assert!(g <= n as f64);
    }

    #[test]
    fn estimators_handle_empty() {
        let f = FrequencyVector::default();
        assert_eq!(adaptive_estimator(&f, 0, 100), 0.0);
        assert_eq!(naive_scaleup(&f, 0, 100), 0.0);
        assert_eq!(gee(&f, 0, 100), 0.0);
    }

    #[test]
    fn ae_clamped_to_population() {
        // f2 = 0, huge f1: the fallback quadratic must not exceed n.
        let vals: Vec<Value> = (0..50).map(Value::Int).collect();
        let f = FrequencyVector::from_values(&vals);
        let est = adaptive_estimator(&f, 50, 60);
        assert!(est <= 60.0);
        assert!(est >= 50.0);
    }

    #[test]
    fn relative_error_edges() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
        assert!((relative_error(150.0, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ae_with_skewed_population() {
        // One mega-value + uniform tail: the high-frequency split keeps AE
        // in a sane range.
        let mut pop = vec![0i64; 20_000];
        pop.extend(uniform_population(1000, 10).iter().map(|v| v + 1));
        let n = pop.len() as u64;
        let r = n / 20;
        let (f, truth) = sample_population(&pop, r as usize, 5);
        let ae = adaptive_estimator(&f, r, n);
        let err = relative_error(ae, truth as f64);
        assert!(err < 0.5, "err={err} est={ae} truth={truth}");
    }
}
