//! Commit effects and their WAL payload encoding.
//!
//! A writer *prepares* a statement into a fully resolved [`CommitEffects`]
//! — the exact rows appended and the exact row versions superseded — and
//! the commit path logs that resolution, not the statement. Replay
//! therefore never re-resolves anything: applying the decoded effects in
//! LSN order reproduces the committed state bit for bit, regardless of
//! how many writers raced during the original run.

use cadb_common::bytes::{get_row, get_u32, put_row, put_u32};
use cadb_common::{CadbError, Result, Row, TableId};

/// Where an updated row version lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSlot {
    /// Insertion ordinal into the immutable compressed base.
    Base(u32),
    /// Index into the table delta's appended slots.
    Appended(u32),
}

/// One superseded row version: the slot it occupies, the version being
/// superseded and the new version. Carrying the *old* row in the log makes
/// replayed maintenance accounting byte-identical to the original run's
/// even when writers raced: the maintainer never has to re-resolve a slot
/// against state that may have moved.
#[derive(Debug, Clone, PartialEq)]
pub struct RowRewrite {
    /// Target slot.
    pub slot: RowSlot,
    /// The row version being superseded.
    pub old_row: Row,
    /// The full new row version.
    pub new_row: Row,
}

/// One deleted row version: the slot whose chain ends and the version
/// being tombstoned. As with [`RowRewrite`], the *old* row travels in the
/// log so replayed maintenance accounting never re-resolves a slot.
#[derive(Debug, Clone, PartialEq)]
pub struct RowTombstone {
    /// Target slot whose version chain ends here.
    pub slot: RowSlot,
    /// The row version being tombstoned.
    pub old_row: Row,
}

/// A resolved commit: everything needed to apply it deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitEffects {
    /// Target table.
    pub table: TableId,
    /// Rows appended (INSERT).
    pub appended: Vec<Row>,
    /// Row versions superseded (UPDATE).
    pub rewritten: Vec<RowRewrite>,
    /// Row versions tombstoned (DELETE): end-of-chain, no successor.
    pub deleted: Vec<RowTombstone>,
}

const SLOT_BASE: u32 = 0;
const SLOT_APPENDED: u32 = 1;

impl CommitEffects {
    /// Encode as a WAL commit-frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.table.0);
        put_u32(&mut out, self.appended.len() as u32);
        for r in &self.appended {
            put_row(&mut out, r);
        }
        put_u32(&mut out, self.rewritten.len() as u32);
        for rw in &self.rewritten {
            match rw.slot {
                RowSlot::Base(o) => {
                    put_u32(&mut out, SLOT_BASE);
                    put_u32(&mut out, o);
                }
                RowSlot::Appended(s) => {
                    put_u32(&mut out, SLOT_APPENDED);
                    put_u32(&mut out, s);
                }
            }
            put_row(&mut out, &rw.old_row);
            put_row(&mut out, &rw.new_row);
        }
        put_u32(&mut out, self.deleted.len() as u32);
        for ts in &self.deleted {
            match ts.slot {
                RowSlot::Base(o) => {
                    put_u32(&mut out, SLOT_BASE);
                    put_u32(&mut out, o);
                }
                RowSlot::Appended(s) => {
                    put_u32(&mut out, SLOT_APPENDED);
                    put_u32(&mut out, s);
                }
            }
            put_row(&mut out, &ts.old_row);
        }
        out
    }

    /// Decode a WAL commit-frame payload.
    pub fn decode(payload: &[u8]) -> Result<CommitEffects> {
        let mut off = 0usize;
        let table = TableId(get_u32(payload, &mut off)?);
        let n_app = get_u32(payload, &mut off)? as usize;
        let mut appended = Vec::with_capacity(n_app);
        for _ in 0..n_app {
            appended.push(get_row(payload, &mut off)?);
        }
        let n_rw = get_u32(payload, &mut off)? as usize;
        let mut rewritten = Vec::with_capacity(n_rw);
        for _ in 0..n_rw {
            let tag = get_u32(payload, &mut off)?;
            let idx = get_u32(payload, &mut off)?;
            let slot = match tag {
                SLOT_BASE => RowSlot::Base(idx),
                SLOT_APPENDED => RowSlot::Appended(idx),
                other => {
                    return Err(CadbError::Storage(format!(
                        "commit payload: unknown slot tag {other}"
                    )))
                }
            };
            rewritten.push(RowRewrite {
                slot,
                old_row: get_row(payload, &mut off)?,
                new_row: get_row(payload, &mut off)?,
            });
        }
        let n_del = get_u32(payload, &mut off)? as usize;
        let mut deleted = Vec::with_capacity(n_del);
        for _ in 0..n_del {
            let tag = get_u32(payload, &mut off)?;
            let idx = get_u32(payload, &mut off)?;
            let slot = match tag {
                SLOT_BASE => RowSlot::Base(idx),
                SLOT_APPENDED => RowSlot::Appended(idx),
                other => {
                    return Err(CadbError::Storage(format!(
                        "commit payload: unknown slot tag {other}"
                    )))
                }
            };
            deleted.push(RowTombstone {
                slot,
                old_row: get_row(payload, &mut off)?,
            });
        }
        if off != payload.len() {
            return Err(CadbError::Storage("commit payload: trailing bytes".into()));
        }
        Ok(CommitEffects {
            table,
            appended,
            rewritten,
            deleted,
        })
    }

    /// Rows touched (appended + rewritten + deleted).
    pub fn n_rows(&self) -> usize {
        self.appended.len() + self.rewritten.len() + self.deleted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadb_common::Value;

    fn fx() -> CommitEffects {
        CommitEffects {
            table: TableId(3),
            appended: vec![
                Row::new(vec![Value::Int(1), Value::Str("a".into())]),
                Row::new(vec![Value::Null, Value::Int(-9)]),
            ],
            rewritten: vec![
                RowRewrite {
                    slot: RowSlot::Base(17),
                    old_row: Row::new(vec![Value::Int(1), Value::Str("b".into())]),
                    new_row: Row::new(vec![Value::Int(2), Value::Str("b".into())]),
                },
                RowRewrite {
                    slot: RowSlot::Appended(0),
                    old_row: Row::new(vec![Value::Int(2), Value::Null]),
                    new_row: Row::new(vec![Value::Int(3), Value::Null]),
                },
            ],
            deleted: vec![RowTombstone {
                slot: RowSlot::Base(4),
                old_row: Row::new(vec![Value::Int(9), Value::Str("c".into())]),
            }],
        }
    }

    #[test]
    fn payload_roundtrip() {
        let e = fx();
        assert_eq!(CommitEffects::decode(&e.encode()).unwrap(), e);
        assert_eq!(e.n_rows(), 5);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = fx().encode();
        bytes.push(0);
        assert!(CommitEffects::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let bytes = fx().encode();
        for cut in 0..bytes.len() {
            assert!(
                CommitEffects::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }
}
