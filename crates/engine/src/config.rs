//! Physical design structures and hypothetical configurations.
//!
//! An [`IndexSpec`] describes a (possibly compressed, possibly partial,
//! possibly MV-based) index *logically*; a [`SizeEstimate`] carries the
//! estimated storage footprint the what-if optimizer prices I/O against;
//! a [`Configuration`] is a set of priced structures — the unit the paper's
//! candidate-selection and enumeration steps manipulate (§6, Figure 4).

use crate::predicate::Predicate;
use crate::stmt::JoinEdge;
use cadb_common::{ColumnId, TableId};
use cadb_compression::CompressionKind;
use std::collections::BTreeSet;
use std::fmt;

/// How much thread-level parallelism the estimation pipeline may use.
///
/// Re-exported here because this is the configuration surface design tools
/// program against: pass [`Parallelism::Serial`] to
/// [`crate::WhatIfOptimizer::with_parallelism`] (or to the advisor/planner
/// options in `cadb-core`) to force the entire pipeline onto one thread.
/// Results are **identical** either way — the parallel runtime's
/// determinism contract (see `cadb_common::par`) guarantees bit-for-bit
/// equality with the serial path; `Serial` exists for debugging, profiling
/// and environments where spawning threads is unwelcome.
pub use cadb_common::par::Parallelism;

/// A materialized-view definition: key–foreign-key joins over a root (fact)
/// table, an optional filter, and grouping with COUNT/SUM aggregates
/// (the class of MVs the paper's join-synopsis samples support, App. B).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MvSpec {
    /// Fact table.
    pub root: TableId,
    /// Join edges (fact-side first), sorted for canonical identity.
    pub joins: Vec<JoinEdge>,
    /// GROUP BY columns.
    pub group_by: Vec<(TableId, ColumnId)>,
    /// Aggregated (SUMmed) columns; COUNT(*) is always present implicitly
    /// for incremental maintenance (App. B.3).
    pub agg_columns: Vec<(TableId, ColumnId)>,
}

impl MvSpec {
    /// Number of stored columns of the MV: group-by + aggregates + COUNT(*).
    pub fn stored_columns(&self) -> usize {
        self.group_by.len() + self.agg_columns.len() + 1
    }
}

/// Logical description of one physical design structure.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexSpec {
    /// Base table (for MV indexes: the MV's fact table).
    pub table: TableId,
    /// Key columns, in order. For MV indexes these are ordinals into the
    /// MV's stored columns.
    pub key_cols: Vec<ColumnId>,
    /// Included (non-key) columns.
    pub include_cols: Vec<ColumnId>,
    /// Whether this is the table's clustered index (at most one per table;
    /// a clustered index stores *all* columns).
    pub clustered: bool,
    /// Compression method.
    pub compression: CompressionKind,
    /// Filter of a partial index.
    pub partial_filter: Option<Predicate>,
    /// When present, the index is built over this MV instead of the table.
    pub mv: Option<MvSpec>,
}

impl IndexSpec {
    /// A plain secondary index.
    pub fn secondary(table: TableId, key_cols: Vec<ColumnId>) -> Self {
        IndexSpec {
            table,
            key_cols,
            include_cols: Vec::new(),
            clustered: false,
            compression: CompressionKind::None,
            partial_filter: None,
            mv: None,
        }
    }

    /// A clustered index on the given key.
    pub fn clustered(table: TableId, key_cols: Vec<ColumnId>) -> Self {
        IndexSpec {
            clustered: true,
            ..IndexSpec::secondary(table, key_cols)
        }
    }

    /// The same structure with a different compression method.
    pub fn with_compression(&self, kind: CompressionKind) -> Self {
        IndexSpec {
            compression: kind,
            ..self.clone()
        }
    }

    /// Same structure with included columns.
    pub fn with_includes(mut self, cols: Vec<ColumnId>) -> Self {
        self.include_cols = cols;
        self
    }

    /// All stored columns: keys then includes, deduplicated.
    pub fn stored_columns(&self) -> Vec<ColumnId> {
        let mut out = self.key_cols.clone();
        for c in &self.include_cols {
            if !out.contains(c) {
                out.push(*c);
            }
        }
        out
    }

    /// The *set* of stored columns (identity under ORD-IND compression —
    /// the ColSet deduction keys on this, §4.2).
    pub fn column_set(&self) -> BTreeSet<ColumnId> {
        self.stored_columns().into_iter().collect()
    }

    /// `true` if the stored columns cover all of `needed`.
    pub fn covers(&self, needed: &BTreeSet<ColumnId>) -> bool {
        let stored = self.column_set();
        needed.iter().all(|c| stored.contains(c))
    }

    /// The identity of this structure ignoring compression — compressed
    /// variants of the same index compete for the same slot (§6.2's
    /// "competing indexes").
    pub fn uncompressed_identity(&self) -> IndexSpec {
        self.with_compression(CompressionKind::None)
    }

    /// `true` for indexes over MVs.
    pub fn is_mv_index(&self) -> bool {
        self.mv.is_some()
    }

    /// `true` for partial (filtered) indexes.
    pub fn is_partial(&self) -> bool {
        self.partial_filter.is_some()
    }
}

impl fmt::Display for IndexSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clustered {
            write!(f, "CIX")?;
        } else if self.is_mv_index() {
            write!(f, "MVIX")?;
        } else {
            write!(f, "IX")?;
        }
        write!(f, " {}(", self.table)?;
        for (i, c) in self.key_cols.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        if !self.include_cols.is_empty() {
            write!(f, " incl ")?;
            for (i, c) in self.include_cols.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{c}")?;
            }
        }
        write!(f, ")")?;
        if self.partial_filter.is_some() {
            write!(f, " partial")?;
        }
        write!(f, " [{}]", self.compression)
    }
}

/// Estimated storage footprint of a structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeEstimate {
    /// Estimated size in bytes.
    pub bytes: f64,
    /// Estimated leaf page count.
    pub pages: f64,
    /// Estimated row count.
    pub rows: f64,
    /// Compression fraction behind the estimate (1.0 when uncompressed).
    pub compression_fraction: f64,
}

/// Fan-out of the storage layer's B+Tree separator levels (mirrors
/// `cadb_storage`'s geometry; the engine layer cannot depend on storage).
const INTERNAL_FANOUT: f64 = 256.0;

/// Internal (separator-level) page overhead in bytes above `leaf_pages`
/// leaves: the geometric ceil-series `⌈l/256⌉ + ⌈⌈l/256⌉/256⌉ + …`, each
/// level a full physical page. A single-leaf structure has no internal
/// level; everything larger pays at least one page — a double-digit share
/// of small structures and part of the estimators' old systematic
/// under-estimate (the leaf-only estimate never charged the tree).
pub(crate) fn internal_overhead_bytes(leaf_pages: f64) -> f64 {
    let mut level = leaf_pages.ceil().max(1.0);
    let mut pages = 0.0;
    while level > 1.0 {
        level = (level / INTERNAL_FANOUT).ceil();
        pages += level;
    }
    pages * cadb_compression::analyze::PAGE_SIZE as f64
}

impl SizeEstimate {
    /// Estimate for an uncompressed structure from bytes and rows. `bytes`
    /// is the pure row footprint — the denominator compression fractions
    /// are measured against — with no tree overhead; deduction arithmetic
    /// relies on footprints staying proportional to row bytes.
    pub fn uncompressed(bytes: f64, rows: f64) -> Self {
        SizeEstimate {
            bytes,
            pages: bytes / cadb_compression::analyze::PAGE_PAYLOAD as f64,
            rows,
            compression_fraction: 1.0,
        }
    }

    /// Apply a compression fraction to this estimate, producing the
    /// estimated **stored** size: the CF scales the leaf level, and the
    /// B+Tree's internal separator pages — which the storage layer's
    /// `size_bytes()` includes but a leaf-footprint × CF product misses —
    /// are charged on top from the compressed leaf count.
    pub fn compressed(&self, cf: f64) -> Self {
        let pages = (self.pages * cf).max(1.0);
        SizeEstimate {
            bytes: self.bytes * cf + internal_overhead_bytes(pages),
            pages,
            rows: self.rows,
            compression_fraction: cf,
        }
    }

    /// Signed relative error of this estimate against a measured size:
    /// `(estimated − measured) / measured`. Positive = over-estimate.
    /// This is the estimated-vs-actual bridge the execution harness
    /// (`cadb-exec`) reports per structure.
    pub fn relative_error(&self, measured_bytes: f64) -> f64 {
        if measured_bytes <= 0.0 {
            return 0.0;
        }
        (self.bytes - measured_bytes) / measured_bytes
    }
}

/// One priced physical structure.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalStructure {
    /// What it is.
    pub spec: IndexSpec,
    /// How big we believe it is.
    pub size: SizeEstimate,
}

/// A hypothetical configuration: a set of priced structures.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Configuration {
    structures: Vec<PhysicalStructure>,
}

impl Configuration {
    /// Empty configuration (base tables only).
    pub fn empty() -> Self {
        Configuration::default()
    }

    /// Build from structures, rejecting duplicates and conflicting
    /// clustered indexes per table.
    pub fn new(structures: Vec<PhysicalStructure>) -> Self {
        let mut cfg = Configuration::default();
        for s in structures {
            cfg.add(s);
        }
        cfg
    }

    /// Add a structure. A structure equal (ignoring compression) to an
    /// existing one replaces it; a clustered index replaces any other
    /// clustered index on the same table.
    pub fn add(&mut self, s: PhysicalStructure) {
        self.structures.retain(|e| {
            !(e.spec.uncompressed_identity() == s.spec.uncompressed_identity()
                || (s.spec.clustered && e.spec.clustered && e.spec.table == s.spec.table))
        });
        self.structures.push(s);
    }

    /// Remove a structure by spec; returns whether it was present.
    pub fn remove(&mut self, spec: &IndexSpec) -> bool {
        let before = self.structures.len();
        self.structures.retain(|e| e.spec != *spec);
        self.structures.len() != before
    }

    /// Whether a structure with this exact spec is present.
    pub fn contains(&self, spec: &IndexSpec) -> bool {
        self.structures.iter().any(|e| e.spec == *spec)
    }

    /// The structures.
    pub fn structures(&self) -> &[PhysicalStructure] {
        &self.structures
    }

    /// Total estimated bytes.
    pub fn total_bytes(&self) -> f64 {
        self.structures.iter().map(|s| s.size.bytes).sum()
    }

    /// Union of two configurations.
    pub fn union(&self, other: &Configuration) -> Configuration {
        let mut out = self.clone();
        for s in &other.structures {
            if !out.contains(&s.spec) {
                out.add(s.clone());
            }
        }
        out
    }

    /// Number of structures.
    pub fn len(&self) -> usize {
        self.structures.len()
    }

    /// `true` when no structures are present.
    pub fn is_empty(&self) -> bool {
        self.structures.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ix(cols: &[u16]) -> IndexSpec {
        IndexSpec::secondary(TableId(0), cols.iter().map(|c| ColumnId(*c)).collect())
    }

    fn priced(spec: IndexSpec, bytes: f64) -> PhysicalStructure {
        PhysicalStructure {
            spec,
            size: SizeEstimate::uncompressed(bytes, 100.0),
        }
    }

    #[test]
    fn stored_columns_dedup_and_cover() {
        let s = ix(&[1, 2]).with_includes(vec![ColumnId(2), ColumnId(3)]);
        assert_eq!(
            s.stored_columns(),
            vec![ColumnId(1), ColumnId(2), ColumnId(3)]
        );
        let mut need = BTreeSet::new();
        need.insert(ColumnId(3));
        need.insert(ColumnId(1));
        assert!(s.covers(&need));
        need.insert(ColumnId(7));
        assert!(!s.covers(&need));
    }

    #[test]
    fn compressed_variants_share_identity() {
        let a = ix(&[1]);
        let b = a.with_compression(CompressionKind::Page);
        assert_ne!(a, b);
        assert_eq!(a.uncompressed_identity(), b.uncompressed_identity());
    }

    #[test]
    fn column_set_ignores_order() {
        let ab = ix(&[1, 2]);
        let ba = ix(&[2, 1]);
        assert_eq!(ab.column_set(), ba.column_set());
        assert_ne!(ab, ba);
    }

    #[test]
    fn configuration_replaces_compression_variant() {
        let mut cfg = Configuration::empty();
        cfg.add(priced(ix(&[1]), 100.0));
        cfg.add(priced(
            ix(&[1]).with_compression(CompressionKind::Row),
            60.0,
        ));
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.structures()[0].spec.compression, CompressionKind::Row);
        assert_eq!(cfg.total_bytes(), 60.0);
    }

    #[test]
    fn one_clustered_index_per_table() {
        let mut cfg = Configuration::empty();
        cfg.add(priced(
            IndexSpec::clustered(TableId(0), vec![ColumnId(0)]),
            10.0,
        ));
        cfg.add(priced(
            IndexSpec::clustered(TableId(0), vec![ColumnId(1)]),
            20.0,
        ));
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.structures()[0].spec.key_cols, vec![ColumnId(1)]);
        // A clustered index on another table coexists.
        cfg.add(priced(
            IndexSpec::clustered(TableId(1), vec![ColumnId(0)]),
            5.0,
        ));
        assert_eq!(cfg.len(), 2);
    }

    #[test]
    fn union_and_remove() {
        let mut a = Configuration::empty();
        a.add(priced(ix(&[1]), 10.0));
        let mut b = Configuration::empty();
        b.add(priced(ix(&[2]), 20.0));
        b.add(priced(ix(&[1]), 10.0));
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        let mut u2 = u.clone();
        assert!(u2.remove(&ix(&[2])));
        assert!(!u2.remove(&ix(&[9])));
        assert_eq!(u2.len(), 1);
    }

    #[test]
    fn size_estimate_compression() {
        let s = SizeEstimate::uncompressed(1000.0, 10.0);
        let c = s.compressed(0.4);
        assert!((c.bytes - 400.0).abs() < 1e-9);
        assert_eq!(c.rows, 10.0);
        assert_eq!(c.compression_fraction, 0.4);
    }

    #[test]
    fn display_forms() {
        let s = ix(&[1, 2]).with_compression(CompressionKind::Page);
        let d = s.to_string();
        assert!(d.contains("IX"));
        assert!(d.contains("PAGE"));
    }
}
