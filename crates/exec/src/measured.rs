//! The estimated-vs-actual harness: materialize a recommended
//! configuration into **real** compressed structures, execute the workload
//! over them, and report measured sizes and row counts next to the
//! advisor's estimates.
//!
//! This closes the loop the paper leaves open in a reproduction that never
//! executes: every number the advisor produced (structure sizes from
//! SampleCF/deduction, what-if workload costs) can be placed beside a
//! measurement from the same code path a real scan would take.
//! [`MeasuredRun::execute`] runs every `SELECT` through **both** execution
//! modes and records whether they agreed, so an actuals report doubles as
//! an end-to-end check of the compressed executor.

use crate::planner::plan_query;
use crate::query::{execute_planned, execute_query, missing_base};
use crate::scan::ExecMode;
use crate::store::{Store, WriteKind};
use cadb_common::json::{JsonArray, JsonObject};
use cadb_common::{obs, rows_footprint, ColumnId, Parallelism, Reservation, Result, Row, TableId};
use cadb_compression::CompressionKind;
use cadb_engine::cardinality::query_output_rows;
use cadb_engine::exec::materialize_mv;
use cadb_engine::{Configuration, Database, IndexSpec, SizeEstimate, WhatIfOptimizer, Workload};
use cadb_sampling::index_rows::{index_row_stream, mv_index_row_stream};
use cadb_shard::{BuildOptions, BuildStats, ShardSpec, ShardedIndex};
use cadb_storage::PhysicalIndex;
use std::collections::BTreeMap;

/// One recommended structure, actually built: the advisor's estimate next
/// to the measured reality.
#[derive(Debug, Clone)]
pub struct MeasuredStructure {
    /// What was built.
    pub spec: IndexSpec,
    /// The advisor's size estimate for it.
    pub estimated: SizeEstimate,
    /// Bytes the built structure actually occupies (leaf payloads +
    /// dictionaries + internal pages).
    pub measured_bytes: usize,
    /// Rows the built structure actually holds.
    pub measured_rows: usize,
    /// Measured compression fraction of the leaf level.
    pub measured_cf: f64,
}

impl MeasuredStructure {
    /// Signed relative size error: `(estimated − measured) / measured`.
    pub fn size_error(&self) -> f64 {
        self.estimated.relative_error(self.measured_bytes as f64)
    }

    /// `estimated / measured` size ratio (1.0 = perfect) — the residual
    /// the error model can be re-calibrated from.
    pub fn size_ratio(&self) -> f64 {
        if self.measured_bytes == 0 {
            1.0
        } else {
            self.estimated.bytes / self.measured_bytes as f64
        }
    }
}

/// A configuration materialized into real compressed structures.
///
/// Every table gets a *base structure* queries scan: the configuration's
/// clustered index when it has one (with that index's compression),
/// otherwise an uncompressed heap. Secondary and MV structures are built
/// too — their measured sizes are what the actuals report compares against
/// the advisor's estimates.
#[derive(Debug)]
pub struct MaterializedConfig {
    bases: BTreeMap<TableId, PhysicalIndex>,
    base_specs: BTreeMap<TableId, IndexSpec>,
    /// Advisor's estimated leaf pages for clustered bases (heaps have no
    /// estimate), feeding the access-path planner's cost model.
    base_est_pages: BTreeMap<TableId, f64>,
    /// For clustered bases: insertion ordinal → position in base scan
    /// order, so a secondary-index scan can restore base row order from
    /// its stored locators (heaps are already in insertion order).
    base_perm: BTreeMap<TableId, Vec<u32>>,
    /// The secondary and MV structures, actually built — the access paths
    /// the planner can choose beyond the bases.
    built: BTreeMap<IndexSpec, PhysicalIndex>,
    measured: Vec<MeasuredStructure>,
    /// Aggregate counters of the (sharded) build that materialized the
    /// configuration, including the budget's peak bytes.
    build_stats: BuildStats,
    /// Budget reservations for the resident built structures; released when
    /// the materialization is dropped.
    _held: Vec<Reservation>,
}

impl MaterializedConfig {
    /// Build every structure of `cfg` (and each table's base structure)
    /// for real, via the same row streams the estimation framework samples.
    ///
    /// Equivalent to [`Self::build_with`] under a monolithic (single-stripe,
    /// unlimited-budget) [`BuildOptions`]; the built bytes are identical.
    pub fn build(db: &Database, cfg: &Configuration) -> Result<Self> {
        Self::build_with(
            db,
            cfg,
            &BuildOptions::default().with_stripe_rows(usize::MAX),
        )
    }

    /// Build every structure of `cfg` through the sharded out-of-core path:
    /// row streams are stripe-encoded on `opts.parallelism` workers, every
    /// working set and resident structure is charged to `opts.budget`, and
    /// the build fails (rather than thrashes) past a hard limit. The built
    /// bytes depend only on `opts.stripe_rows` — never on the parallelism
    /// mode — and with a single stripe they equal [`Self::build`] exactly.
    pub fn build_with(db: &Database, cfg: &Configuration, opts: &BuildOptions) -> Result<Self> {
        let _span = obs::span("exec.build_config");
        let mut held: Vec<Reservation> = Vec::new();
        let mut stats = BuildStats::default();
        let mut track =
            |held: &mut Vec<Reservation>, sharded: ShardedIndex| -> Result<PhysicalIndex> {
                let s = *sharded.stats();
                stats.shards += s.shards;
                stats.stripes += s.stripes;
                stats.rows += s.rows;
                let ix = sharded.into_index();
                held.push(opts.budget.try_reserve(ix.size_bytes())?);
                Ok(ix)
            };
        let mut bases = BTreeMap::new();
        let mut base_specs: BTreeMap<TableId, IndexSpec> = BTreeMap::new();
        let mut base_est_pages: BTreeMap<TableId, f64> = BTreeMap::new();
        let mut base_perm: BTreeMap<TableId, Vec<u32>> = BTreeMap::new();
        for t in db.table_ids() {
            // A partial clustered index cannot serve as the scan base — it
            // would silently drop the filtered-out rows from every query
            // (and both execution modes would agree on the wrong answer).
            let clustered = cfg.structures().iter().find(|s| {
                s.spec.clustered
                    && s.spec.table == t
                    && s.spec.mv.is_none()
                    && s.spec.partial_filter.is_none()
            });
            let ix = match clustered {
                Some(s) => {
                    let src = db.table(t).rows();
                    let (rows, dtypes, n_key) = index_row_stream(db, &s.spec, src)?;
                    base_specs.insert(t, s.spec.clone());
                    base_est_pages.insert(t, s.size.pages);
                    // Replicate the clustered sort as a permutation of
                    // insertion ordinals: clustered rows are the table rows
                    // ordered by the leading key columns (stable on ties),
                    // exactly what `index_row_stream` produced above.
                    let n_key_cols = s.spec.key_cols.len().min(db.dtypes(t).len());
                    let key: Vec<ColumnId> = (0..n_key_cols as u16).map(ColumnId).collect();
                    let mut idx: Vec<u32> = (0..src.len() as u32).collect();
                    idx.sort_by(|&a, &b| {
                        src[a as usize]
                            .key_cmp(&src[b as usize], &key)
                            .then_with(|| src[a as usize].cmp(&src[b as usize]))
                    });
                    let mut perm = vec![0u32; src.len()];
                    for (pos, &ord) in idx.iter().enumerate() {
                        perm[ord as usize] = pos as u32;
                    }
                    base_perm.insert(t, perm);
                    let _ws = opts.budget.try_reserve(rows_footprint(&rows))?;
                    track(
                        &mut held,
                        ShardedIndex::build_presorted(
                            &rows,
                            &dtypes,
                            n_key,
                            s.spec.compression,
                            ShardSpec::range(1),
                            opts,
                        )?,
                    )?
                }
                None => track(
                    &mut held,
                    ShardedIndex::build_presorted(
                        db.table(t).rows(),
                        &db.dtypes(t),
                        0,
                        CompressionKind::None,
                        ShardSpec::range(1),
                        opts,
                    )?,
                )?,
            };
            bases.insert(t, ix);
        }
        let mut built: BTreeMap<IndexSpec, PhysicalIndex> = BTreeMap::new();
        let mut measured = Vec::with_capacity(cfg.structures().len());
        for s in cfg.structures() {
            // The clustered base was already built above — measure it
            // instead of materializing the full table a second time.
            if base_specs.get(&s.spec.table) == Some(&s.spec) {
                let ix = &bases[&s.spec.table];
                measured.push(MeasuredStructure {
                    spec: s.spec.clone(),
                    estimated: s.size,
                    measured_bytes: ix.size_bytes(),
                    measured_rows: ix.n_rows(),
                    measured_cf: ix.compression_fraction(),
                });
                continue;
            }
            let (rows, dtypes, n_key) = if let Some(mv) = &s.spec.mv {
                let mv_rows = materialize_mv(db, mv)?;
                mv_index_row_stream(db, &s.spec, &mv_rows)?
            } else {
                index_row_stream(db, &s.spec, db.table(s.spec.table).rows())?
            };
            let _ws = opts.budget.try_reserve(rows_footprint(&rows))?;
            let ix = track(
                &mut held,
                ShardedIndex::build_presorted(
                    &rows,
                    &dtypes,
                    n_key,
                    s.spec.compression,
                    ShardSpec::range(1),
                    opts,
                )?,
            )?;
            measured.push(MeasuredStructure {
                spec: s.spec.clone(),
                estimated: s.size,
                measured_bytes: ix.size_bytes(),
                measured_rows: ix.n_rows(),
                measured_cf: ix.compression_fraction(),
            });
            built.insert(s.spec.clone(), ix);
        }
        stats.peak_bytes = opts.budget.peak_bytes();
        Ok(MaterializedConfig {
            bases,
            base_specs,
            base_est_pages,
            base_perm,
            built,
            measured,
            build_stats: stats,
            _held: held,
        })
    }

    /// The base structure queries scan for a table.
    pub fn base(&self, t: TableId) -> Result<&PhysicalIndex> {
        self.bases.get(&t).ok_or_else(|| missing_base(t))
    }

    /// The clustered spec serving as a table's base, when one exists.
    pub fn base_spec(&self, t: TableId) -> Option<&IndexSpec> {
        self.base_specs.get(&t)
    }

    /// The advisor's estimated leaf pages for a table's base structure
    /// (`None` for plain heaps, which were never priced).
    pub fn base_estimated_pages(&self, t: TableId) -> Option<f64> {
        self.base_est_pages.get(&t).copied()
    }

    /// Position of insertion ordinal `ordinal` in the base structure's
    /// scan order — identity for heaps, the clustered-sort permutation
    /// otherwise. This is what lets a secondary-index scan restore exact
    /// base row order from its stored locators.
    pub fn base_position(&self, t: TableId, ordinal: usize) -> usize {
        match self.base_perm.get(&t) {
            Some(perm) => perm.get(ordinal).map(|p| *p as usize).unwrap_or(ordinal),
            None => ordinal,
        }
    }

    /// The built physical structure for a secondary or MV spec, when the
    /// configuration holds one.
    pub fn structure(&self, spec: &IndexSpec) -> Option<&PhysicalIndex> {
        self.built.get(spec)
    }

    /// Every structure of the configuration, built and measured.
    pub fn structures(&self) -> &[MeasuredStructure] {
        &self.measured
    }

    /// Aggregate counters of the build that materialized this
    /// configuration: stripes encoded, rows built, and the peak bytes the
    /// build's memory budget metered.
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }
}

/// Actuals of one executed query.
#[derive(Debug, Clone)]
pub struct QueryActual {
    /// Output rows produced.
    pub rows_out: usize,
    /// Optimizer-estimated output rows (the estimate the chosen path's
    /// measured `rows_out` is compared against).
    pub estimated_rows_out: f64,
    /// The access path the planner chose, human-readable.
    pub path: String,
    /// `true` when the plan uses any structure beyond the base scans
    /// (covering index, seek, or MV) — the planner actually doing work.
    pub non_base: bool,
    /// `true` when the whole query was answered from an MV index (the
    /// structured form of the path class; reports must not re-derive it
    /// from the display string).
    pub uses_mv: bool,
    /// Leaf pages the planned compressed path touched.
    pub pages_scanned: usize,
    /// Leaf pages a forced full base scan touches (the planner's win is
    /// `pages_scanned` vs this).
    pub pages_scanned_base: usize,
    /// Predicate evaluations on the planned compressed path (per run /
    /// per dictionary entry).
    pub predicate_evals_compressed: usize,
    /// Predicate evaluations on the reference path (per row).
    pub predicate_evals_reference: usize,
    /// Whether planned and reference output were bit-identical.
    pub matches_reference: bool,
}

impl QueryActual {
    /// Signed relative error of the optimizer's row estimate against the
    /// measured output rows (0 when nothing was measured).
    pub fn rows_error(&self) -> f64 {
        if self.rows_out == 0 {
            0.0
        } else {
            (self.estimated_rows_out - self.rows_out as f64) / self.rows_out as f64
        }
    }
}

/// Measured actuals of one executed write statement, next to the what-if
/// estimate the advisor priced it with — the write-side counterpart of
/// [`QueryActual`].
#[derive(Debug, Clone)]
pub struct WriteCostActual {
    /// Index of the statement in the workload's statement list.
    pub statement_index: usize,
    /// INSERT, UPDATE or DELETE.
    pub kind: WriteKind,
    /// Target table.
    pub table: TableId,
    /// Rows the statement wrote (or rewrote).
    pub n_rows: u64,
    /// The statement's workload weight.
    pub weight: f64,
    /// What-if estimated cost of the statement under the configuration
    /// (unweighted, same units as `measured_cost`).
    pub estimated_cost: f64,
    /// Measured maintenance cost: the store actually ran the write through
    /// the WAL'd commit path and counted the work (unweighted).
    pub measured_cost: f64,
    /// The MV-maintenance share of `measured_cost`.
    pub measured_mv_cost: f64,
    /// Distinct MV groups the write actually touched (what-if assumes
    /// every inserted row lands in its own group).
    pub mv_groups_touched: u64,
    /// Secondary-index rows actually maintained (what-if assumes
    /// `n · selectivity` for partial structures).
    pub index_rows_touched: u64,
    /// WAL bytes the commit appended.
    pub wal_bytes: u64,
}

impl WriteCostActual {
    /// `estimated / measured` cost ratio (1.0 = perfect; 1.0 when nothing
    /// was measured) — the maintenance residual the error model summarizes.
    pub fn cost_ratio(&self) -> f64 {
        if self.measured_cost <= 0.0 {
            1.0
        } else {
            self.estimated_cost / self.measured_cost
        }
    }
}

/// The estimated-vs-actual report of one [`MeasuredRun`].
#[derive(Debug, Clone)]
pub struct MeasuredReport {
    /// Per-structure estimates vs measurements.
    pub structures: Vec<MeasuredStructure>,
    /// Sum of estimated structure sizes.
    pub estimated_total_bytes: f64,
    /// Sum of measured structure sizes.
    pub measured_total_bytes: usize,
    /// Per-query actuals, in workload order.
    pub queries: Vec<QueryActual>,
    /// Per-write-statement actuals, in workload order: each INSERT/UPDATE
    /// was really committed through the store's WAL'd write path and its
    /// maintenance work counted.
    pub writes: Vec<WriteCostActual>,
    /// What-if estimated workload cost under the configuration.
    pub estimated_workload_cost: f64,
    /// What-if estimated workload cost with no structures (baseline).
    pub baseline_workload_cost: f64,
    /// **Measured** weighted MV-maintenance cost of the workload's writes:
    /// `Σ weight · measured_mv_cost` over [`Self::writes`], from actually
    /// running every INSERT/UPDATE through incremental MV maintenance.
    /// **`None` when the workload has no write statements** — maintenance
    /// is then unexercised, not free; earlier versions reported `0` here,
    /// which understated update cost for MV-heavy configurations (one of
    /// the two INSERT-heavy shape mismatches flagged in EXPERIMENTS.md).
    pub mv_maintenance_cost: Option<f64>,
    /// The what-if *estimate* of the same quantity (the weighted
    /// `insert_cost` delta the advisor charged MV structures), kept beside
    /// the measurement so the residual is visible. Same `None` gating.
    pub mv_maintenance_whatif: Option<f64>,
}

impl MeasuredReport {
    /// Signed relative error of the configuration's total size.
    pub fn total_size_error(&self) -> f64 {
        if self.measured_total_bytes == 0 {
            0.0
        } else {
            (self.estimated_total_bytes - self.measured_total_bytes as f64)
                / self.measured_total_bytes as f64
        }
    }

    /// `true` when every query's compressed output matched the reference.
    pub fn all_queries_verified(&self) -> bool {
        self.queries.iter().all(|q| q.matches_reference)
    }

    /// `(method, estimated/measured)` residual per compressed structure —
    /// the raw material for re-calibrating the error model
    /// (`cadb_core::ErrorModel::calibrate_samplecf`).
    pub fn residual_ratios(&self) -> Vec<(CompressionKind, f64)> {
        self.structures
            .iter()
            .filter(|s| s.spec.compression.is_compressed())
            .map(|s| (s.spec.compression, s.size_ratio()))
            .collect()
    }

    /// `(estimated, measured)` maintenance-cost pairs per write statement —
    /// the raw material for `cadb_core::ErrorModel::maintenance_bias`.
    pub fn maintenance_residuals(&self) -> Vec<(f64, f64)> {
        self.writes
            .iter()
            .map(|w| (w.estimated_cost, w.measured_cost))
            .collect()
    }

    /// Measured weighted maintenance cost of **all** writes (base + index
    /// + MV), `None` when the workload has none.
    pub fn measured_write_cost(&self) -> Option<f64> {
        if self.writes.is_empty() {
            None
        } else {
            Some(self.writes.iter().map(|w| w.weight * w.measured_cost).sum())
        }
    }

    /// Machine-readable JSON form (same writer conventions as the
    /// recommendation / estimation reports).
    pub fn to_json(&self) -> String {
        let mut structures = JsonArray::new();
        for s in &self.structures {
            structures.push_raw(
                &JsonObject::new()
                    .str("spec", &s.spec.to_string())
                    .str("compression", &s.spec.compression.to_string())
                    .num("estimated_bytes", s.estimated.bytes)
                    .int("measured_bytes", s.measured_bytes as i64)
                    .num("size_error", s.size_error())
                    .num("estimated_rows", s.estimated.rows)
                    .int("measured_rows", s.measured_rows as i64)
                    .num("estimated_cf", s.estimated.compression_fraction)
                    .num("measured_cf", s.measured_cf)
                    .finish(),
            );
        }
        let mut queries = JsonArray::new();
        for q in &self.queries {
            queries.push_raw(
                &JsonObject::new()
                    .str("path", &q.path)
                    .bool("non_base", q.non_base)
                    .bool("uses_mv", q.uses_mv)
                    .int("rows_out", q.rows_out as i64)
                    .num("estimated_rows_out", q.estimated_rows_out)
                    .num("rows_error", q.rows_error())
                    .int("pages_scanned", q.pages_scanned as i64)
                    .int("pages_scanned_base", q.pages_scanned_base as i64)
                    .int(
                        "predicate_evals_compressed",
                        q.predicate_evals_compressed as i64,
                    )
                    .int(
                        "predicate_evals_reference",
                        q.predicate_evals_reference as i64,
                    )
                    .bool("matches_reference", q.matches_reference)
                    .finish(),
            );
        }
        let mut writes = JsonArray::new();
        for w in &self.writes {
            writes.push_raw(
                &JsonObject::new()
                    .int("statement_index", w.statement_index as i64)
                    .str(
                        "kind",
                        match w.kind {
                            WriteKind::Insert => "insert",
                            WriteKind::Update => "update",
                            WriteKind::Delete => "delete",
                        },
                    )
                    .int("table", w.table.0 as i64)
                    .int("n_rows", w.n_rows as i64)
                    .num("weight", w.weight)
                    .num("estimated_cost", w.estimated_cost)
                    .num("measured_cost", w.measured_cost)
                    .num("measured_mv_cost", w.measured_mv_cost)
                    .num("cost_ratio", w.cost_ratio())
                    .int("mv_groups_touched", w.mv_groups_touched as i64)
                    .int("index_rows_touched", w.index_rows_touched as i64)
                    .int("wal_bytes", w.wal_bytes as i64)
                    .finish(),
            );
        }
        let mut out = JsonObject::new()
            .raw("structures", &structures.finish())
            .num("estimated_total_bytes", self.estimated_total_bytes)
            .int("measured_total_bytes", self.measured_total_bytes as i64)
            .num("total_size_error", self.total_size_error())
            .raw("queries", &queries.finish())
            .raw("writes", &writes.finish())
            .bool("all_queries_verified", self.all_queries_verified())
            .num("estimated_workload_cost", self.estimated_workload_cost)
            .num("baseline_workload_cost", self.baseline_workload_cost)
            .bool(
                "mv_maintenance_measured",
                self.mv_maintenance_cost.is_some(),
            );
        if let Some(c) = self.mv_maintenance_cost {
            out = out.num("mv_maintenance_cost", c);
        }
        if let Some(c) = self.mv_maintenance_whatif {
            out = out.num("mv_maintenance_whatif", c);
        }
        if let Some(c) = self.measured_write_cost() {
            out = out.num("measured_write_cost", c);
        }
        out.finish()
    }
}

/// Materialize → execute → measure: the harness that turns a
/// recommendation into ground truth.
#[derive(Debug)]
pub struct MeasuredRun<'a> {
    db: &'a Database,
    workload: &'a Workload,
    parallelism: Parallelism,
    seed: u64,
    build: BuildOptions,
}

/// Default RNG seed for the synthetic rows write statements commit
/// ([`MeasuredRun::with_seed`] overrides it).
pub const DEFAULT_WRITE_SEED: u64 = 0xCADB;

impl<'a> MeasuredRun<'a> {
    /// A run over a database and the workload whose queries will be
    /// executed.
    pub fn new(db: &'a Database, workload: &'a Workload) -> Self {
        MeasuredRun {
            db,
            workload,
            parallelism: Parallelism::Auto,
            seed: DEFAULT_WRITE_SEED,
            build: BuildOptions::default().with_stripe_rows(usize::MAX),
        }
    }

    /// Build options for the materialization (stripe size, memory budget,
    /// build parallelism). The default is the monolithic single-stripe
    /// build; pass a budgeted, striped [`BuildOptions`] to run the
    /// out-of-core path and surface its peak bytes in the report.
    pub fn with_build(mut self, build: BuildOptions) -> Self {
        self.build = build;
        self
    }

    /// Worker-pool setting for the leaf-parallel scans (results identical
    /// for every setting; [`Parallelism::Serial`] is the escape hatch).
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// Seed for the synthetic rows the write statements commit (measured
    /// write costs are a deterministic function of it).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build every structure of `cfg`, plan and execute every workload
    /// query over the compressed structures (verifying each against the
    /// decompress-then-execute reference), and report measured sizes, row
    /// counts and chosen access paths next to the estimates.
    pub fn execute(&self, cfg: &Configuration) -> Result<MeasuredReport> {
        let _span = obs::span("exec.measured_run");
        let mat = MaterializedConfig::build_with(self.db, cfg, &self.build)?;
        let mut queries = Vec::new();
        for (q, _) in self.workload.queries() {
            let _qspan = obs::span("exec.run_query");
            let plan = plan_query(&mat, q)?;
            let (rows_c, stats_c) = execute_planned(&mat, q, &plan, self.parallelism)?;
            let (rows_r, stats_r) = execute_query(&mat, q, self.parallelism, ExecMode::Reference)?;
            queries.push(QueryActual {
                rows_out: rows_c.len(),
                estimated_rows_out: query_output_rows(self.db, q),
                path: plan.describe(),
                non_base: !plan.is_base_only(),
                uses_mv: plan.mv.is_some(),
                pages_scanned: stats_c.pages_scanned,
                pages_scanned_base: stats_r.pages_scanned,
                predicate_evals_compressed: stats_c.predicate_evals,
                predicate_evals_reference: stats_r.predicate_evals,
                matches_reference: rows_c == rows_r,
            });
        }
        let opt = WhatIfOptimizer::new(self.db).with_parallelism(self.parallelism);
        let estimated_total_bytes = cfg.total_bytes();
        let measured_total_bytes = mat.structures().iter().map(|s| s.measured_bytes).sum();
        // Writes: actually commit every INSERT/UPDATE through the store's
        // WAL'd write path and count the maintenance work, so the MV
        // maintenance number below is a *measurement*, not the what-if
        // guess it used to be. Only measurable when the workload writes;
        // an explicit `None` replaces the old silent `0`.
        let (writes, mv_maintenance_cost) = if self.workload.has_writes() {
            let store = Store::open(self.db, &mat, opt.model().clone());
            let actuals = store.apply_workload(self.workload, self.seed, self.parallelism)?;
            let writes: Vec<WriteCostActual> = actuals
                .iter()
                .map(|a| {
                    let (stmt, weight) = &self.workload.statements[a.statement_index];
                    WriteCostActual {
                        statement_index: a.statement_index,
                        kind: a.kind,
                        table: a.table,
                        n_rows: a.n_rows,
                        weight: *weight,
                        estimated_cost: opt.statement_cost(stmt, cfg),
                        measured_cost: a.measured_cost,
                        measured_mv_cost: a.measured_mv_cost,
                        mv_groups_touched: a.counters.mv_groups_touched,
                        index_rows_touched: a.counters.index_rows_touched,
                        wal_bytes: a.counters.wal_bytes,
                    }
                })
                .collect();
            let measured_mv: f64 = writes.iter().map(|w| w.weight * w.measured_mv_cost).sum();
            (writes, Some(measured_mv))
        } else {
            (Vec::new(), None)
        };
        // Keep the what-if estimate of the same quantity beside the
        // measurement: the weighted `insert_cost` delta MV structures are
        // charged for, under the same gating.
        let mv_maintenance_whatif = if self.workload.inserts().next().is_some() {
            let mut no_mv = Configuration::empty();
            for s in cfg.structures() {
                if s.spec.mv.is_none() {
                    no_mv.add(s.clone());
                }
            }
            Some(
                self.workload
                    .inserts()
                    .map(|(ins, w)| w * (opt.insert_cost(ins, cfg) - opt.insert_cost(ins, &no_mv)))
                    .sum(),
            )
        } else {
            None
        };
        Ok(MeasuredReport {
            structures: mat.structures().to_vec(),
            estimated_total_bytes,
            measured_total_bytes,
            queries,
            writes,
            estimated_workload_cost: opt.workload_cost(self.workload, cfg),
            baseline_workload_cost: opt.workload_cost(self.workload, &Configuration::empty()),
            mv_maintenance_cost,
            mv_maintenance_whatif,
        })
    }

    /// Execute one query in a given mode (exposed for benchmarks and
    /// equivalence tests). Returns the output rows and scan counters.
    pub fn execute_query(
        &self,
        mat: &MaterializedConfig,
        q: &cadb_engine::Query,
        mode: ExecMode,
    ) -> Result<(Vec<Row>, crate::scan::ExecStats)> {
        execute_query(mat, q, self.parallelism, mode)
    }
}
