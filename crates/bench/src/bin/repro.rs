//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [experiment] [--scale S] [--json] [--mem-budget MiB] [--trace FILE]
//!
//! experiments:
//!   table1    MV row-count estimation errors (App. B.3)
//!   fig9      SampleCF error calibration + Table 2 fits (App. C)
//!   fig10     Deduction error calibration + Table 3 fits (App. C)
//!   table4    Graph search: All vs Greedy vs Optimal (App. D.3)
//!   scaling   Greedy vs exact runtime growth (§7.1)
//!   fig11     Estimation overhead in DTAc, with/without deduction
//!   fig12     TPC-H simple indexes, SELECT-intensive, ablation
//!   fig13     TPC-H simple indexes, INSERT-intensive, ablation
//!   fig14     Sales simple indexes, SELECT-intensive, DTAc vs DTA
//!   fig15     Sales simple indexes, INSERT-intensive, DTAc vs DTA
//!   fig16     TPC-H all features, SELECT-intensive, DTAc vs DTA
//!   fig17     TPC-H all features, INSERT-intensive, DTAc vs DTA
//!   motivating  §1 Examples 1–2 (staged vs integrated)
//!   par       parallel estimation pipeline speedup (serial vs pool)
//!   advise    one DTAc tuning run (machine-readable with --json)
//!   exec      estimated vs MEASURED: build + execute the recommendation
//!             on TPC-H and TPC-DS (machine-readable with --json)
//!   plan      access-path planner actuals: which path each query took
//!             (base / covering-index seek / MV), estimated vs measured
//!             rows per path class (machine-readable with --json)
//!   serve     WAL'd write path: commit the workload's INSERT/UPDATEs
//!             through the snapshot-isolated store, measure maintenance
//!             per statement, and verify crash recovery bit-for-bit
//!             (machine-readable with --json); with --shards N, also
//!             sweep the sharded serving layer (per-shard WAL streams
//!             under a global commit order) over shard counts up to N
//!   shard     out-of-core sharded data path: stream-generate tables in
//!             chunks, build partitioned structures under the memory
//!             budget, verify shard-count invariance, report peak bytes
//!   obs       traced advise → execute → serve pass (span tree + metrics)
//!             plus the store's group-commit latency/throughput curve
//!             across batch sizes (machine-readable with --json)
//!   all       everything above (default)
//!
//! --json    emit machine-readable reports (Recommendation +
//!           SizeEstimationReport / MeasuredReport JSON) for the
//!           experiments that produce them (currently: advise, exec,
//!           plan, serve, obs)
//! --mem-budget MiB
//!           run materializations through the striped out-of-core build
//!           path under a hard memory cap (default: unlimited, metering
//!           only); exceeded budgets fail loudly instead of thrashing
//! --shards N
//!           serve experiment only: commit the write burst through the
//!           sharded store at power-of-two shard counts up to N (plus the
//!           monolithic baseline), asserting digest identity and recovery
//!           at every count
//! --trace FILE
//!           record the whole run under a TraceRecorder and write the
//!           span-tree + metrics JSON (TraceReport::to_json) to FILE
//! ```

use cadb_bench::experiments::designs::{
    design_figure, VariantSet, BUDGETS, INSERT_INTENSIVE, SELECT_INTENSIVE,
};
use cadb_bench::experiments::{
    advise, calibration, estimation_runtime, exec_actuals, graph_quality, motivating, mv_rows,
    obs as obs_exp, par_speedup, plan, serve, shard_path,
};
use cadb_common::obs;
use cadb_core::FeatureSet;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = 0.2f64;
    let mut json = false;
    let mut mem_budget_mib: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut trace_file: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--scale needs a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--mem-budget" => {
                mem_budget_mib = Some(args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(
                    || {
                        eprintln!("--mem-budget needs a size in MiB");
                        std::process::exit(2);
                    },
                ));
                i += 2;
            }
            "--shards" => {
                shards = Some(
                    args.get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("--shards needs a shard count");
                            std::process::exit(2);
                        }),
                );
                i += 2;
            }
            "--trace" => {
                trace_file = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--trace needs an output file path");
                    std::process::exit(2);
                }));
                i += 2;
            }
            other => {
                which = other.to_string();
                i += 1;
            }
        }
    }
    let t0 = Instant::now();
    match trace_file {
        Some(path) => {
            // Trace the whole run: every experiment's spans/metrics land in
            // one report. Recording is observational only — the printed
            // tables are bit-identical to an untraced run.
            let ((), report) = obs::record(|| run(&which, scale, json, mem_budget_mib, shards));
            std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
                eprintln!("--trace: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!(
                "[trace: {} root spans, {} metrics -> {path}]",
                report.roots.len(),
                report.metric_count()
            );
        }
        None => run(&which, scale, json, mem_budget_mib, shards),
    }
    eprintln!("[repro {which}: {:.1}s]", t0.elapsed().as_secs_f64());
}

/// Build options for the measured materializations: striped + budgeted
/// when `--mem-budget` was given, the byte-identical monolithic path
/// otherwise (but still metering, so peak bytes are always reported).
fn build_options(mem_budget_mib: Option<usize>) -> cadb_shard::BuildOptions {
    match mem_budget_mib {
        Some(mib) => cadb_shard::BuildOptions::default()
            .with_budget(cadb_common::MemoryBudget::limited(mib << 20)),
        None => cadb_shard::BuildOptions::default().with_stripe_rows(usize::MAX),
    }
}

fn tpch(scale: f64) -> (cadb_engine::Database, cadb_engine::Workload) {
    let gen = cadb_datagen::TpchGen::new(scale);
    let db = gen.build().expect("TPC-H generation");
    let w = gen.workload(&db).expect("TPC-H workload");
    (db, w)
}

fn sales(scale: f64) -> (cadb_engine::Database, cadb_engine::Workload) {
    let gen = cadb_datagen::SalesGen::new(scale);
    let db = gen.build().expect("Sales generation");
    let w = gen.workload(&db).expect("Sales workload");
    (db, w)
}

fn run(which: &str, scale: f64, json: bool, mem_budget_mib: Option<usize>, shards: Option<usize>) {
    let all = which == "all";
    if all || which == "table1" {
        let (db, _) = tpch((scale * 2.5).min(1.0));
        for t in mv_rows::table1(&db, 0.05, 42) {
            println!("{}", t.render());
        }
    }
    if all || which == "fig9" {
        for t in calibration::figure9_all(scale) {
            println!("{}", t.render());
        }
    }
    if all || which == "fig10" {
        let (db, _) = tpch(scale);
        println!("{}", calibration::figure10_for_db(&db).render());
    }
    if all || which == "table4" {
        let (db, _) = tpch(scale);
        println!("{}", graph_quality::table4(&db, 0.5, 0.9).render());
    }
    if all || which == "scaling" {
        let (db, _) = tpch(scale);
        println!("{}", graph_quality::runtime_scaling(&db).render());
    }
    if all || which == "fig11" {
        let (db, w) = tpch(scale);
        let budget = 0.4 * db.base_data_bytes() as f64;
        println!("{}", estimation_runtime::figure11(&db, &w, budget).render());
    }
    if all || which == "fig12" {
        let (db, w) = tpch(scale);
        println!(
            "{}",
            design_figure(
                "Figure 12: TPC-H SELECT-intensive, simple indexes (improvement %)",
                &db,
                &w,
                SELECT_INTENSIVE,
                &BUDGETS,
                VariantSet::Ablation,
                FeatureSet::Simple,
            )
            .render()
        );
    }
    if all || which == "fig13" {
        let (db, w) = tpch(scale);
        println!(
            "{}",
            design_figure(
                "Figure 13: TPC-H INSERT-intensive, simple indexes (improvement %)",
                &db,
                &w,
                INSERT_INTENSIVE,
                &BUDGETS,
                VariantSet::Ablation,
                FeatureSet::Simple,
            )
            .render()
        );
    }
    if all || which == "fig14" {
        let (db, w) = sales(scale);
        println!(
            "{}",
            design_figure(
                "Figure 14: Sales SELECT-intensive, simple indexes (improvement %)",
                &db,
                &w,
                SELECT_INTENSIVE,
                &BUDGETS,
                VariantSet::DtacVsDta,
                FeatureSet::Simple,
            )
            .render()
        );
    }
    if all || which == "fig15" {
        let (db, w) = sales(scale);
        println!(
            "{}",
            design_figure(
                "Figure 15: Sales INSERT-intensive, simple indexes (improvement %)",
                &db,
                &w,
                INSERT_INTENSIVE,
                &BUDGETS,
                VariantSet::DtacVsDta,
                FeatureSet::Simple,
            )
            .render()
        );
    }
    if all || which == "fig16" {
        let (db, w) = tpch(scale);
        println!(
            "{}",
            design_figure(
                "Figure 16: TPC-H SELECT-intensive, all features (improvement %)",
                &db,
                &w,
                SELECT_INTENSIVE,
                &BUDGETS,
                VariantSet::DtacVsDta,
                FeatureSet::All,
            )
            .render()
        );
    }
    if all || which == "fig17" {
        let (db, w) = tpch(scale);
        println!(
            "{}",
            design_figure(
                "Figure 17: TPC-H INSERT-intensive, all features (improvement %)",
                &db,
                &w,
                INSERT_INTENSIVE,
                &BUDGETS,
                VariantSet::DtacVsDta,
                FeatureSet::All,
            )
            .render()
        );
    }
    if all || which == "motivating" {
        let (db, w) = tpch(scale);
        println!("{}", motivating::motivating(&db, &w).render());
    }
    if all || which == "par" {
        let (db, w) = tpch(scale);
        println!("{}", par_speedup::par_speedup(&db, &w).render());
    }
    if all || which == "advise" {
        let (db, w) = tpch(scale);
        if json {
            println!("{}", advise::advise_json(&db, &w, scale));
        } else {
            println!("{}", advise::advise_text(&db, &w));
        }
    }
    if all || which == "exec" {
        let (db, w) = tpch(scale);
        let ds_gen = cadb_datagen::TpcdsGen::new(scale);
        let ds_db = ds_gen.build().expect("TPC-DS generation");
        let ds_w = ds_gen.workload(&ds_db).expect("TPC-DS workload");
        if json {
            println!(
                "{}",
                exec_actuals::exec_json(&[("tpch", &db, &w), ("tpcds", &ds_db, &ds_w)], scale)
            );
        } else {
            // One budget handle per dataset: the meter is shared state, so
            // a per-dataset clone keeps each peak readable on its own.
            let budget_h = match mem_budget_mib {
                Some(mib) => cadb_common::MemoryBudget::limited(mib << 20),
                None => cadb_common::MemoryBudget::unlimited(),
            };
            let budget_ds = match mem_budget_mib {
                Some(mib) => cadb_common::MemoryBudget::limited(mib << 20),
                None => cadb_common::MemoryBudget::unlimited(),
            };
            let (rec_h, report_h, fraction_h) = exec_actuals::measure_with_build(
                &db,
                &w,
                &build_options(mem_budget_mib).with_budget(budget_h.clone()),
            );
            let (_, report_ds, _) = exec_actuals::measure_with_build(
                &ds_db,
                &ds_w,
                &build_options(mem_budget_mib).with_budget(budget_ds.clone()),
            );
            println!("{}", exec_actuals::exec_table("TPC-H", &report_h).render());
            println!(
                "{}",
                exec_actuals::exec_table("TPC-DS", &report_ds).render()
            );
            println!(
                "{}",
                exec_actuals::shortcircuit_table("TPC-H", &db, &w).render()
            );
            println!(
                "{}",
                exec_actuals::calibration_table(&report_h, fraction_h).render()
            );
            let (mt, _, _, _) =
                exec_actuals::maintenance_feedback(&db, &w, &rec_h.configuration, &report_h);
            println!("{}", mt.render());
            let (peak_h, peak_ds) = (budget_h.peak_bytes(), budget_ds.peak_bytes());
            println!(
                "exec: build peak memory {:.1} MiB (TPC-H) / {:.1} MiB (TPC-DS){}",
                peak_h as f64 / (1 << 20) as f64,
                peak_ds as f64 / (1 << 20) as f64,
                match mem_budget_mib {
                    Some(mib) => format!(", hard budget {mib} MiB"),
                    None => ", unbudgeted".to_string(),
                }
            );
        }
    }
    if all || which == "plan" {
        let (db, w) = tpch(scale);
        let ds_gen = cadb_datagen::TpcdsGen::new(scale);
        let ds_db = ds_gen.build().expect("TPC-DS generation");
        let ds_w = ds_gen.workload(&ds_db).expect("TPC-DS workload");
        if json {
            println!(
                "{}",
                plan::plan_json(&[("tpch", &db, &w), ("tpcds", &ds_db, &ds_w)], scale)
            );
        } else {
            for (name, d, wl) in [("TPC-H", &db, &w), ("TPC-DS", &ds_db, &ds_w)] {
                let dtac = plan::measure_plan(d, wl, &plan::dtac_config(d, wl));
                let rich = plan::measure_plan(d, wl, &plan::index_rich_config(d, wl));
                let mv_rich = plan::measure_plan(d, wl, &plan::mv_rich_config(d, wl));
                println!("{}", plan::plan_table(name, "DTAc rec", &dtac).render());
                println!("{}", plan::plan_table(name, "index-rich", &rich).render());
                println!("{}", plan::plan_table(name, "mv-rich", &mv_rich).render());
                println!(
                    "{}",
                    plan::path_bias_table(
                        name,
                        &[
                            ("DTAc rec", &dtac),
                            ("index-rich", &rich),
                            ("mv-rich", &mv_rich),
                        ]
                    )
                    .render()
                );
            }
        }
    }
    if all || which == "serve" {
        let (db, w) = tpch(scale);
        if json {
            println!("{}", serve::serve_json(&[("tpch", &db, &w)], scale));
        } else {
            for (variant, cfg) in [
                ("DTAc rec", plan::dtac_config(&db, &w)),
                ("mv-rich", plan::mv_rich_config(&db, &w)),
            ] {
                let out = serve::serve_measure(&db, &w, &cfg);
                assert!(
                    out.recovery_verified,
                    "serve: recovery diverged from the live store ({variant})"
                );
                println!("{}", serve::serve_table("TPC-H", variant, &out).render());
            }
        }
        if let Some(max) = shards {
            // Power-of-two shard counts up to --shards N, N always last.
            let mut counts: Vec<usize> = std::iter::successors(Some(1usize), |n| n.checked_mul(2))
                .take_while(|n| *n < max)
                .collect();
            counts.push(max.max(1));
            let points = serve::sharded_serve_curve(&db, &plan::mv_rich_config(&db, &w), &counts);
            assert!(
                points.iter().all(|p| p.recovery_verified),
                "serve --shards: a sharded log set failed to recover"
            );
            println!("{}", serve::sharded_serve_table("TPC-H", &points).render());
        }
    }
    if all || which == "shard" {
        println!(
            "{}",
            shard_path::shard_table(scale, mem_budget_mib).render()
        );
    }
    if all || which == "obs" {
        let (db, w) = tpch(scale);
        if json {
            println!("{}", obs_exp::obs_json(&db, &w, scale));
        } else {
            let trace = obs_exp::traced_pipeline(&db, &w);
            println!("obs: traced advise -> execute -> serve (TPC-H)");
            println!("{}", trace.render());
            let points = obs_exp::wal_batch_curve(&db, &plan::dtac_config(&db, &w));
            println!("{}", obs_exp::wal_batch_table("TPC-H", &points).render());
        }
    }
    let known = [
        "all",
        "table1",
        "fig9",
        "fig10",
        "table4",
        "scaling",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "motivating",
        "par",
        "advise",
        "exec",
        "plan",
        "serve",
        "shard",
        "obs",
    ];
    if !known.contains(&which) {
        eprintln!("unknown experiment '{which}'; one of: {}", known.join(", "));
        std::process::exit(2);
    }
}
