//! Logical tables: schema + row store.
//!
//! `Table` is the source of truth the engine, the sampler and the physical
//! structures all read from. Rows are validated against the schema on
//! insert.

use cadb_common::{CadbError, ColumnId, Result, Row, TableSchema};

/// An in-memory table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Row>,
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Insert one row after validating it.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        self.schema.validate_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Bulk-insert rows; validates each and rolls back on the first error.
    pub fn insert_many(&mut self, rows: Vec<Row>) -> Result<usize> {
        let checkpoint = self.rows.len();
        for row in rows {
            if let Err(e) = self.insert(row) {
                self.rows.truncate(checkpoint);
                return Err(e);
            }
        }
        Ok(self.rows.len() - checkpoint)
    }

    /// Rows sorted by the given key columns (ties broken by the full row so
    /// the order is deterministic), projected onto `projection`.
    ///
    /// This is exactly the row stream an index build consumes.
    pub fn sorted_projection(&self, key_cols: &[ColumnId], projection: &[ColumnId]) -> Vec<Row> {
        let mut idx: Vec<usize> = (0..self.rows.len()).collect();
        idx.sort_by(|&a, &b| {
            self.rows[a]
                .key_cmp(&self.rows[b], key_cols)
                .then_with(|| self.rows[a].cmp(&self.rows[b]))
        });
        idx.into_iter()
            .map(|i| self.rows[i].project(projection))
            .collect()
    }

    /// Uncompressed data size of the table in bytes (schema row width ×
    /// rows) — the figure physical design tools use for the "no indexes"
    /// baseline database size.
    pub fn uncompressed_bytes(&self) -> usize {
        self.schema.row_width() * self.rows.len()
    }

    /// Validate a column ordinal belongs to this table.
    pub fn check_column(&self, col: ColumnId) -> Result<()> {
        if col.raw() < self.schema.arity() {
            Ok(())
        } else {
            Err(CadbError::NotFound(format!(
                "column {col} in table {}",
                self.schema.name
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadb_common::{ColumnDef, DataType, Value};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Varchar { max_len: 8 }),
            ],
            vec![ColumnId(0)],
        )
        .unwrap()
    }

    fn row(a: i64, b: &str) -> Row {
        Row::new(vec![Value::Int(a), Value::Str(b.into())])
    }

    #[test]
    fn insert_validates() {
        let mut t = Table::new(schema());
        t.insert(row(1, "x")).unwrap();
        assert!(t.insert(Row::new(vec![Value::Null, Value::Null])).is_err());
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn insert_many_rolls_back() {
        let mut t = Table::new(schema());
        t.insert(row(0, "keep")).unwrap();
        let bad = vec![row(1, "ok"), Row::new(vec![Value::Int(2)])];
        assert!(t.insert_many(bad).is_err());
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.rows()[0], row(0, "keep"));
    }

    #[test]
    fn sorted_projection_orders_and_projects() {
        let mut t = Table::new(schema());
        t.insert_many(vec![row(3, "c"), row(1, "a"), row(2, "b")])
            .unwrap();
        let sorted = t.sorted_projection(&[ColumnId(0)], &[ColumnId(1), ColumnId(0)]);
        assert_eq!(
            sorted,
            vec![
                Row::new(vec![Value::Str("a".into()), Value::Int(1)]),
                Row::new(vec![Value::Str("b".into()), Value::Int(2)]),
                Row::new(vec![Value::Str("c".into()), Value::Int(3)]),
            ]
        );
    }

    #[test]
    fn sorted_projection_deterministic_on_ties() {
        let mut t = Table::new(schema());
        t.insert_many(vec![row(1, "z"), row(1, "a"), row(1, "m")])
            .unwrap();
        let s1 = t.sorted_projection(&[ColumnId(0)], &[ColumnId(0), ColumnId(1)]);
        let s2 = t.sorted_projection(&[ColumnId(0)], &[ColumnId(0), ColumnId(1)]);
        assert_eq!(s1, s2);
        // Ties broken by full row: a < m < z.
        assert_eq!(s1[0].values[1], Value::Str("a".into()));
        assert_eq!(s1[2].values[1], Value::Str("z".into()));
    }

    #[test]
    fn size_accounting() {
        let mut t = Table::new(schema());
        assert_eq!(t.uncompressed_bytes(), 0);
        t.insert(row(1, "x")).unwrap();
        assert_eq!(t.uncompressed_bytes(), t.schema().row_width());
    }

    #[test]
    fn check_column_bounds() {
        let t = Table::new(schema());
        assert!(t.check_column(ColumnId(1)).is_ok());
        assert!(t.check_column(ColumnId(2)).is_err());
    }
}
