//! Index merging (\[8\], §6.2 closing remarks).
//!
//! Pairs of secondary candidates on the same table whose keys share a
//! leading column are merged into one structure: the longer key, with the
//! union of stored columns as includes. The merged object can serve both
//! source queries with one storage footprint; DTAc also generates its
//! compressed variants.

use super::{candidates::expand_compression, dedup_pool, AdvisorOptions};
use cadb_engine::{IndexSpec, WhatIfOptimizer, Workload};

/// Cap on merged candidates added per run (merging is quadratic).
const MAX_MERGED: usize = 64;

/// Add merged variants of compatible candidate pairs to the pool.
pub fn add_merged_candidates(
    _opt: &WhatIfOptimizer<'_>,
    _workload: &Workload,
    pool: &mut Vec<IndexSpec>,
    options: &AdvisorOptions,
) {
    // Merge only plain uncompressed secondaries; compression variants of
    // the merged result are generated afterwards.
    let bases: Vec<IndexSpec> = pool
        .iter()
        .filter(|s| {
            !s.clustered
                && !s.is_partial()
                && !s.is_mv_index()
                && s.compression == cadb_compression::CompressionKind::None
        })
        .cloned()
        .collect();
    let mut merged: Vec<IndexSpec> = Vec::new();
    'outer: for (i, a) in bases.iter().enumerate() {
        for b in bases.iter().skip(i + 1) {
            if merged.len() >= MAX_MERGED {
                break 'outer;
            }
            if let Some(m) = merge_pair(a, b) {
                merged.push(m);
            }
        }
    }
    dedup_pool(&mut merged);
    // Don't re-add merges that already exist in the pool.
    merged.retain(|m| !pool.contains(m));
    let expanded = expand_compression(merged, options);
    pool.extend(expanded);
    dedup_pool(pool);
}

/// Merge two secondary indexes when one's key is a prefix of the other's
/// (or they share the same leading column). Returns the merged spec.
pub fn merge_pair(a: &IndexSpec, b: &IndexSpec) -> Option<IndexSpec> {
    if a.table != b.table {
        return None;
    }
    if a.key_cols.is_empty() || b.key_cols.is_empty() || a.key_cols[0] != b.key_cols[0] {
        return None;
    }
    // Key: the longer of the two (ties: a's).
    let (long, _short) = if a.key_cols.len() >= b.key_cols.len() {
        (a, b)
    } else {
        (b, a)
    };
    let key = long.key_cols.clone();
    let mut includes: Vec<cadb_common::ColumnId> = Vec::new();
    for c in a.stored_columns().into_iter().chain(b.stored_columns()) {
        if !key.contains(&c) && !includes.contains(&c) {
            includes.push(c);
        }
    }
    if key.len() + includes.len() > 12 {
        return None; // too wide to be plausible
    }
    let merged = IndexSpec::secondary(a.table, key).with_includes(includes);
    if merged == *a || merged == *b {
        None // nothing new
    } else {
        Some(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadb_common::{ColumnId, TableId};

    fn ix(cols: &[u16], incl: &[u16]) -> IndexSpec {
        IndexSpec::secondary(TableId(0), cols.iter().map(|c| ColumnId(*c)).collect())
            .with_includes(incl.iter().map(|c| ColumnId(*c)).collect())
    }

    #[test]
    fn merge_shared_leading_column() {
        let a = ix(&[1, 2], &[5]);
        let b = ix(&[1], &[3]);
        let m = merge_pair(&a, &b).unwrap();
        assert_eq!(m.key_cols, vec![ColumnId(1), ColumnId(2)]);
        let stored = m.stored_columns();
        for c in [1u16, 2, 3, 5] {
            assert!(stored.contains(&ColumnId(c)), "missing C{c}");
        }
    }

    #[test]
    fn no_merge_across_tables_or_leading_cols() {
        let a = ix(&[1], &[]);
        let mut b = ix(&[1], &[2]);
        b.table = TableId(1);
        assert!(merge_pair(&a, &b).is_none());
        let c = ix(&[2], &[]);
        assert!(merge_pair(&a, &c).is_none());
    }

    #[test]
    fn merge_identical_is_none() {
        let a = ix(&[1, 2], &[3]);
        assert!(merge_pair(&a, &a.clone()).is_none());
    }

    #[test]
    fn merged_pool_grows_with_compressed_variants() {
        let gen = cadb_datagen::TpchGen::new(0.01);
        let db = gen.build().unwrap();
        let opt = WhatIfOptimizer::new(&db);
        let w = Workload::default();
        let options = AdvisorOptions::dtac(1e9);
        let t = db.table_id("lineitem").unwrap();
        let sd = db.schema(t).column_id("shipdate").unwrap();
        let qty = db.schema(t).column_id("quantity").unwrap();
        let ep = db.schema(t).column_id("extendedprice").unwrap();
        let mut pool = vec![
            IndexSpec::secondary(t, vec![sd]).with_includes(vec![qty]),
            IndexSpec::secondary(t, vec![sd, ep]),
        ];
        let before = pool.len();
        add_merged_candidates(&opt, &w, &mut pool, &options);
        assert!(pool.len() > before);
        // The merged structure and its compressed variants exist.
        let merged: Vec<_> = pool
            .iter()
            .filter(|s| s.key_cols == vec![sd, ep] && !s.include_cols.is_empty())
            .collect();
        assert!(merged.len() >= 3, "expected merged + 2 compressed variants");
    }
}
