//! The [`Strategy`] trait, [`ValueTree`]s, and the built-in strategies for
//! ranges, tuples, and constants.
//!
//! Each strategy *generates* a [`ValueTree`]: a value plus a lazy list of
//! strictly-simpler candidate trees, most aggressive first. The runner
//! ([`crate::test_runner::run_cases`]) adopts the first candidate whose
//! value still fails and descends into *its* children, which makes the
//! integer shrinkers below (propose the range start, then the midpoint,
//! then one step down) a binary search toward the range start — the
//! reported counterexample is locally minimal.
//!
//! Because shrinking flows through trees rather than re-deriving
//! candidates from the output value, `prop_map`ped strategies shrink for
//! real: the mapped tree keeps the *inner* strategy's tree and re-applies
//! the (non-invertible) map to every shrunk inner value.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A value-level shrink function: all strictly-simpler candidates of a
/// value, most aggressive first (shared, so every subtree can re-apply it).
pub type ShrinkFn<'a, T> = Rc<dyn Fn(&T) -> Vec<T> + 'a>;

/// A generated value together with a lazy list of strictly-simpler
/// candidate trees (most aggressive first). This is the shim's version of
/// real proptest's `ValueTree`: shrinking walks trees, so combinators that
/// cannot invert their output (like [`Map`]) still shrink by keeping the
/// pre-image tree alive.
///
/// The `'a` lifetime ties a tree to the strategy that produced it (child
/// closures borrow the strategy).
pub struct ValueTree<'a, T> {
    value: T,
    children: Rc<dyn Fn() -> Vec<ValueTree<'a, T>> + 'a>,
}

impl<'a, T> Clone for ValueTree<'a, T>
where
    T: Clone,
{
    fn clone(&self) -> Self {
        ValueTree {
            value: self.value.clone(),
            children: Rc::clone(&self.children),
        }
    }
}

impl<'a, T: Clone + 'static> ValueTree<'a, T> {
    pub fn new(value: T, children: Rc<dyn Fn() -> Vec<ValueTree<'a, T>> + 'a>) -> Self {
        ValueTree { value, children }
    }

    /// A tree with no simpler candidates.
    pub fn leaf(value: T) -> Self {
        ValueTree {
            value,
            children: Rc::new(Vec::new),
        }
    }

    pub fn value(&self) -> &T {
        &self.value
    }

    /// Strictly-simpler candidate trees, most aggressive first.
    pub fn children(&self) -> Vec<ValueTree<'a, T>> {
        (self.children)()
    }

    /// Build a tree from a value-level shrink function: every candidate's
    /// own children come from the same function, recursively. This is how
    /// [`Strategy::shrink`]-based strategies lift into tree shrinking.
    pub fn from_shrink_fn(value: T, f: ShrinkFn<'a, T>) -> Self {
        let v = value.clone();
        let f2 = Rc::clone(&f);
        ValueTree {
            value,
            children: Rc::new(move || {
                f2(&v)
                    .into_iter()
                    .map(|c| ValueTree::from_shrink_fn(c, Rc::clone(&f2)))
                    .collect()
            }),
        }
    }

    /// The tree that makes `prop_map` shrink: apply `f` to this tree's
    /// value and, lazily, to every shrunk candidate of the *inner* tree.
    pub fn map<U, F>(self, f: &'a F) -> ValueTree<'a, U>
    where
        U: Clone + 'static,
        F: Fn(T) -> U,
    {
        let value = f(self.value.clone());
        ValueTree {
            value,
            children: Rc::new(move || self.children().into_iter().map(|c| c.map(f)).collect()),
        }
    }
}

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Strictly-simpler candidate replacements for a failing `value`, most
    /// aggressive first. The default is "cannot shrink".
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Generate a [`ValueTree`] whose children shrink the generated value.
    /// The default lifts [`Strategy::shrink`] recursively; combinators
    /// that can do better (e.g. [`Map`], tuples) override it.
    fn new_tree<'a>(&'a self, rng: &mut TestRng) -> ValueTree<'a, Self::Value>
    where
        Self: Sized,
        Self::Value: Clone + 'static,
    {
        let value = self.generate(rng);
        ValueTree::from_shrink_fn(value, Rc::new(move |v: &Self::Value| self.shrink(v)))
    }

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    S::Value: Clone + 'static,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }

    // `shrink` stays empty — the map is not invertible at the value level.
    // Tree generation shrinks instead: the inner tree is kept alive and
    // the map re-applied to each shrunk inner value.
    fn new_tree<'a>(&'a self, rng: &mut TestRng) -> ValueTree<'a, U>
    where
        Self: Sized,
        U: Clone + 'static,
    {
        self.inner.new_tree(rng).map(&self.f)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

/// Wrap a tree so every (transitive) child is re-checked against the
/// filter predicate before being proposed.
fn filtered_tree<'a, T, F>(tree: ValueTree<'a, T>, f: &'a F) -> ValueTree<'a, T>
where
    T: Clone + 'static,
    F: Fn(&T) -> bool,
{
    let value = tree.value().clone();
    ValueTree::new(
        value,
        Rc::new(move || {
            tree.children()
                .into_iter()
                .filter(|c| f(c.value()))
                .map(|c| filtered_tree(c, f))
                .collect()
        }),
    )
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 candidates", self.reason);
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        // Shrink through the inner strategy, keeping only candidates the
        // filter still accepts.
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.f)(v))
            .collect()
    }

    fn new_tree<'a>(&'a self, rng: &mut TestRng) -> ValueTree<'a, Self::Value>
    where
        Self: Sized,
        Self::Value: Clone + 'static,
    {
        for _ in 0..1000 {
            let tree = self.inner.new_tree(rng);
            if (self.f)(tree.value()) {
                return filtered_tree(tree, &self.f);
            }
        }
        panic!("prop_filter({}) rejected 1000 candidates", self.reason);
    }
}

/// Binary-search shrink candidates for an integer failing at `v`, toward
/// `origin` (the simplest value the strategy can produce): origin first,
/// then the midpoint, then one step closer — dedup'd, all ≠ `v`.
pub(crate) fn shrink_int_toward(v: i128, origin: i128) -> Vec<i128> {
    if v == origin {
        return Vec::new();
    }
    let mid = origin + (v - origin) / 2;
    let step = if v > origin { v - 1 } else { v + 1 };
    let mut out = vec![origin];
    for c in [mid, step] {
        if c != v && !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.uniform_i128(self.start as i128, self.end as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(*value as i128, self.start as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.uniform_i128(*self.start() as i128, *self.end() as i128 + 1) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(*value as i128, *self.start() as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value != self.start {
            out.push(self.start);
            let mid = self.start + (value - self.start) / 2.0;
            if mid != *value && mid != self.start {
                out.push(mid);
            }
        }
        out
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }

    fn shrink(&self, value: &f32) -> Vec<f32> {
        let mut out = Vec::new();
        if *value != self.start {
            out.push(self.start);
            let mid = self.start + (value - self.start) / 2.0;
            if mid != *value && mid != self.start {
                out.push(mid);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone + 'static,)+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Shrink one component at a time, earlier components first.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }

            fn new_tree<'a>(&'a self, rng: &mut TestRng) -> ValueTree<'a, Self::Value>
            where
                Self: Sized,
                Self::Value: Clone + 'static,
            {
                // Combine per-component trees: candidates replace one
                // component's tree at a time (earlier components first), so
                // a mapped component shrinks through its own tree.
                fn combine<'a, $($s: Clone + 'static),+>(
                    trees: ($(ValueTree<'a, $s>,)+),
                ) -> ValueTree<'a, ($($s,)+)> {
                    let value = ($(trees.$idx.value().clone(),)+);
                    ValueTree::new(
                        value,
                        Rc::new(move || {
                            let mut out = Vec::new();
                            $(
                                for c in trees.$idx.children() {
                                    let mut next = trees.clone();
                                    next.$idx = c;
                                    out.push(combine(next));
                                }
                            )+
                            out
                        }),
                    )
                }
                combine(($(self.$idx.new_tree(rng),)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
