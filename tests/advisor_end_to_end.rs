//! End-to-end advisor tests: DTAc vs DTA on the TPC-H-like workload,
//! reproducing the qualitative claims of §7 at miniature scale.

use cadb::core::{Advisor, AdvisorOptions};
use cadb::datagen::TpchGen;
use cadb::engine::{Configuration, WhatIfOptimizer};

fn setup() -> (cadb::engine::Database, cadb::engine::Workload, f64) {
    let gen = TpchGen::new(0.01);
    let db = gen.build().unwrap();
    let w = gen.workload(&db).unwrap();
    let base = db.base_data_bytes() as f64;
    (db, w, base)
}

#[test]
fn recommendation_respects_budget_and_improves() {
    let (db, w, base) = setup();
    for frac in [0.1, 0.3, 0.7] {
        let budget = base * frac;
        let rec = Advisor::new(&db, AdvisorOptions::dtac(budget))
            .recommend(&w)
            .unwrap();
        assert!(
            rec.total_bytes() <= budget + 1.0,
            "budget {budget} exceeded: {}",
            rec.total_bytes()
        );
        assert!(
            rec.improvement_percent() > 0.0,
            "no improvement at {frac}: {}",
            rec.improvement_percent()
        );
        // The recommendation's final cost must be reproducible through the
        // public what-if API.
        let opt = WhatIfOptimizer::new(&db);
        let recost = opt.workload_cost(&w, &rec.configuration);
        assert!((recost - rec.final_cost).abs() / rec.final_cost < 1e-9);
    }
}

#[test]
fn dtac_beats_dta_under_tight_budget() {
    // §7.1 "Comparison with no compression": DTAc wins clearly in tight
    // budgets because compression fits more (and faster) indexes.
    let (db, w, base) = setup();
    let budget = base * 0.15;
    let dtac = Advisor::new(&db, AdvisorOptions::dtac(budget))
        .recommend(&w)
        .unwrap();
    let dta = Advisor::new(&db, AdvisorOptions::dta(budget))
        .recommend(&w)
        .unwrap();
    assert!(
        dtac.improvement_percent() > dta.improvement_percent(),
        "DTAc {:.1}% <= DTA {:.1}%",
        dtac.improvement_percent(),
        dta.improvement_percent()
    );
    // And DTAc actually uses compression somewhere.
    assert!(dtac
        .configuration
        .structures()
        .iter()
        .any(|s| s.spec.compression.is_compressed()));
}

#[test]
fn gap_shrinks_with_generous_budget() {
    // §7.1: "The difference is smaller in larger space budgets".
    let (db, w, base) = setup();
    let tight = 0.15 * base;
    let roomy = 1.0 * base;
    let gap = |budget: f64| {
        let dtac = Advisor::new(&db, AdvisorOptions::dtac(budget))
            .recommend(&w)
            .unwrap();
        let dta = Advisor::new(&db, AdvisorOptions::dta(budget))
            .recommend(&w)
            .unwrap();
        dtac.improvement_percent() - dta.improvement_percent()
    };
    let g_tight = gap(tight);
    let g_roomy = gap(roomy);
    assert!(
        g_tight >= g_roomy - 1.0,
        "gap should shrink (tight {g_tight:.1} vs roomy {g_roomy:.1})"
    );
}

#[test]
fn insert_intensive_workload_gets_lighter_compression() {
    // §7.1 / Fig. 13: with heavy INSERTs, DTAc "appropriately avoided
    // compressing too many indexes".
    let (db, w, base) = setup();
    let budget = base * 0.5;
    let select_heavy = w.with_insert_weight(0.1);
    let insert_heavy = w.with_insert_weight(200.0);
    let count_compressed = |w: &cadb::engine::Workload| {
        let rec = Advisor::new(&db, AdvisorOptions::dtac(budget))
            .recommend(w)
            .unwrap();
        (
            rec.configuration
                .structures()
                .iter()
                .filter(|s| s.spec.compression.is_compressed())
                .count(),
            rec.configuration.len(),
        )
    };
    let (comp_sel, n_sel) = count_compressed(&select_heavy);
    let (comp_ins, n_ins) = count_compressed(&insert_heavy);
    // Fewer compressed structures (or fewer structures overall) when
    // inserts dominate.
    assert!(
        comp_ins <= comp_sel && n_ins <= n_sel,
        "select ({comp_sel}/{n_sel}) vs insert ({comp_ins}/{n_ins})"
    );
}

#[test]
fn staged_compression_is_worse_than_integrated() {
    // The motivating claim (§1, Examples 1–2): selecting indexes without
    // considering compression and compressing afterwards ("staged") loses
    // to integrated selection under a tight budget.
    let (db, w, base) = setup();
    let budget = base * 0.15;

    // Integrated: DTAc.
    let integrated = Advisor::new(&db, AdvisorOptions::dtac(budget))
        .recommend(&w)
        .unwrap();

    // Staged: run DTA (no compression) with the same budget, then compress
    // everything it chose (the "blindly compress" strategy).
    let dta = Advisor::new(&db, AdvisorOptions::dta(budget))
        .recommend(&w)
        .unwrap();
    let opt = WhatIfOptimizer::new(&db);
    let mut staged = Configuration::empty();
    for s in dta.configuration.structures() {
        let compressed = s
            .spec
            .with_compression(cadb::compression::CompressionKind::Page);
        let size = opt.estimate_uncompressed_size(&compressed).compressed(0.45);
        staged.add(cadb::engine::PhysicalStructure {
            spec: compressed,
            size,
        });
    }
    let staged_cost = opt.workload_cost(&w, &staged);
    assert!(
        integrated.final_cost < staged_cost,
        "integrated {} !< staged {staged_cost}",
        integrated.final_cost
    );
}

#[test]
fn ablations_ordered_sensibly_under_tight_budget() {
    // Figures 12–13: DTAc(Both) ≥ each single technique ≥ DTAc(None).
    let (db, w, base) = setup();
    let budget = base * 0.12;
    let run = |opts: AdvisorOptions| {
        Advisor::new(&db, opts)
            .recommend(&w)
            .unwrap()
            .improvement_percent()
    };
    let both = run(AdvisorOptions::dtac(budget));
    let none = run(AdvisorOptions::dtac_none(budget));
    let skyline_only = run(AdvisorOptions {
        backtracking: false,
        ..AdvisorOptions::dtac(budget)
    });
    let backtrack_only = run(AdvisorOptions {
        skyline: false,
        ..AdvisorOptions::dtac(budget)
    });
    assert!(both + 1e-6 >= none, "Both {both:.2} < None {none:.2}");
    assert!(both + 1e-6 >= skyline_only.min(backtrack_only));
    // The full implementation must deliver a real improvement.
    assert!(both > 0.0);
}

#[test]
fn zero_budget_can_still_improve_via_table_compression() {
    // Appendix D.2: "DTAc might produce indexes even with 0% space budget
    // by compressing existing tables … and spending the saved space".
    // With a budget equal to the (uncompressed) base size, compressing the
    // clustered index frees room for secondary indexes.
    let (db, w, base) = setup();
    let rec = Advisor::new(&db, AdvisorOptions::dtac(base * 0.05))
        .recommend(&w)
        .unwrap();
    // Even a 5% budget finds something (compressed structures are small).
    assert!(rec.improvement_percent() > 0.0);
}
