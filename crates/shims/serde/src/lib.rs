//! In-tree stand-in for `serde`'s derive macros.
//!
//! The workspace only uses serde in derive position (`#[derive(Serialize,
//! Deserialize)]`) to mark types as wire-ready; nothing serializes yet.
//! These derives expand to nothing, keeping the annotations compiling until
//! the real serde is restored via the workspace manifest.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
