//! Option strategies (`proptest::option::of`).

use crate::strategy::{Strategy, ValueTree};
use crate::test_runner::TestRng;
use std::rc::Rc;

pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some` three times out of four, matching real proptest's default weight.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S> Strategy for OptionStrategy<S>
where
    S: Strategy,
    S::Value: Clone + 'static,
{
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.uniform_usize(0, 4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }

    fn shrink(&self, value: &Option<S::Value>) -> Vec<Option<S::Value>> {
        match value {
            None => Vec::new(),
            Some(v) => {
                // `None` is the simplest option, then the inner shrinks.
                let mut out = vec![None];
                out.extend(self.inner.shrink(v).into_iter().map(Some));
                out
            }
        }
    }

    fn new_tree<'a>(&'a self, rng: &mut TestRng) -> ValueTree<'a, Option<S::Value>>
    where
        Self: Sized,
        Self::Value: Clone + 'static,
    {
        if rng.uniform_usize(0, 4) == 0 {
            ValueTree::leaf(None)
        } else {
            some_tree(self.inner.new_tree(rng))
        }
    }
}

/// `None` is the simplest candidate, then the inner tree's shrinks.
fn some_tree<'a, T: Clone + 'static>(inner: ValueTree<'a, T>) -> ValueTree<'a, Option<T>> {
    let value = Some(inner.value().clone());
    ValueTree::new(
        value,
        Rc::new(move || {
            let mut out = vec![ValueTree::leaf(None)];
            out.extend(inner.children().into_iter().map(some_tree));
            out
        }),
    )
}
