//! Partitioning policy and build options for sharded builds.

use cadb_common::par::Parallelism;
use cadb_common::{MemoryBudget, Row, Value};

pub use cadb_common::rows_footprint;

/// How rows are routed to shards before the per-shard build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Contiguous ranges of input positions. The only policy valid for
    /// heaps (`n_key_cols == 0`), where input order must be preserved.
    Range,
    /// A stable hash of the key-column values. Spreads skewed keys evenly;
    /// the merge re-establishes global key order.
    Hash,
}

/// Shard layout of a build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Number of shards (≥ 1; 1 degenerates to the monolithic build).
    pub shards: usize,
    /// Routing policy.
    pub partitioning: Partitioning,
}

impl ShardSpec {
    /// Range-partition into `shards` shards.
    pub fn range(shards: usize) -> Self {
        ShardSpec {
            shards: shards.max(1),
            partitioning: Partitioning::Range,
        }
    }

    /// Hash-partition into `shards` shards.
    pub fn hash(shards: usize) -> Self {
        ShardSpec {
            shards: shards.max(1),
            partitioning: Partitioning::Hash,
        }
    }
}

/// Knobs of a sharded build.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Worker-pool setting. The built bytes are identical for every mode.
    pub parallelism: Parallelism,
    /// Rows per leaf-packing stripe. The stripe grid — not the shard count
    /// — determines page boundaries, so two builds agree byte-for-byte iff
    /// they use the same `stripe_rows`.
    pub stripe_rows: usize,
    /// Byte meter (and optional hard limit) charged for build working sets
    /// and resident encoded pages.
    pub budget: MemoryBudget,
}

/// Default rows per stripe (matches the datagen chunk grid).
pub const DEFAULT_STRIPE_ROWS: usize = 4096;

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            parallelism: Parallelism::Auto,
            stripe_rows: DEFAULT_STRIPE_ROWS,
            budget: MemoryBudget::unlimited(),
        }
    }
}

impl BuildOptions {
    /// Replace the worker-pool setting.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// Replace the stripe size (clamped to ≥ 1).
    pub fn with_stripe_rows(mut self, rows: usize) -> Self {
        self.stripe_rows = rows.max(1);
        self
    }

    /// Replace the memory budget.
    pub fn with_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// Counters of one sharded build, surfaced in reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Shards the input was partitioned into.
    pub shards: usize,
    /// Leaf-packing stripes encoded.
    pub stripes: usize,
    /// Rows built.
    pub rows: usize,
    /// Peak bytes the build's budget metered (working sets + encoded
    /// pages resident at once).
    pub peak_bytes: usize,
}

impl BuildStats {
    /// View as named observability metrics; `peak_bytes` is a high-water
    /// mark, so builds publish it as a gauge rather than through these
    /// counter deltas.
    pub fn as_metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("shard.shards", self.shards as u64),
            ("shard.stripes", self.stripes as u64),
            ("shard.rows", self.rows as u64),
        ]
    }

    /// Stream these counters (and the peak-bytes gauge) to the installed
    /// recorder — called once per finished build.
    pub fn publish(&self) {
        cadb_common::obs::publish_counters(&self.as_metrics());
        cadb_common::obs::gauge_set("shard.build_peak_bytes", self.peak_bytes as f64);
    }
}

/// Routes the **serving path**'s writes to shards — the write-side
/// counterpart of the build-side partitioner. The same [`Partitioning`]
/// policies apply, translated to row-at-a-time routing:
///
/// * [`Partitioning::Hash`]: a row routes by [`key_hash`] of its leading
///   key columns (all columns when the base is an unkeyed heap), whether
///   it is an appended row or the base version an update/delete targets.
/// * [`Partitioning::Range`]: base slots route by contiguous ranges of
///   their base ordinal (mirroring the build's position ranges); appended
///   rows, whose ordinal space grows without bound, route round-robin by
///   their append sequence number.
///
/// Routing is a pure function of `(policy, shards, base_n, n_key_cols)`
/// and the routed row/slot — independent of parallelism mode, batch size
/// and platform — so the same commit always shards the same way.
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    spec: ShardSpec,
    /// Leading key columns [`Partitioning::Hash`] hashes (0 = whole row).
    n_key_cols: usize,
    /// Base-table row count [`Partitioning::Range`] splits into ranges.
    base_n: usize,
}

impl ShardRouter {
    /// A router for one table's writes.
    pub fn new(spec: ShardSpec, n_key_cols: usize, base_n: usize) -> Self {
        ShardRouter {
            spec,
            n_key_cols,
            base_n,
        }
    }

    /// Number of shards routed across.
    pub fn shards(&self) -> usize {
        self.spec.shards
    }

    fn hash_route(&self, row: &Row) -> usize {
        let n_key = if self.n_key_cols == 0 {
            row.values.len()
        } else {
            self.n_key_cols
        };
        (key_hash(row, n_key) % self.spec.shards as u64) as usize
    }

    /// Shard of an appended row; `seq` is the row's append sequence number
    /// within its statement (the Range policy's round-robin counter —
    /// statement-local, so routing never depends on commit interleaving).
    pub fn route_append(&self, row: &Row, seq: u64) -> usize {
        match self.spec.partitioning {
            Partitioning::Hash => self.hash_route(row),
            Partitioning::Range => (seq % self.spec.shards as u64) as usize,
        }
    }

    /// Shard of a base slot an update or delete targets; `old_row` is the
    /// slot's immutable base version (what the Hash policy hashes).
    pub fn route_base_slot(&self, ordinal: u32, old_row: &Row) -> usize {
        match self.spec.partitioning {
            Partitioning::Hash => self.hash_route(old_row),
            Partitioning::Range => (ordinal as usize * self.spec.shards)
                .checked_div(self.base_n)
                .map_or(0, |s| s.min(self.spec.shards - 1)),
        }
    }
}

/// Stable FNV-1a hash of a row's leading `n_key_cols` values — the Hash
/// partitioning router. Independent of platform and shard count.
pub fn key_hash(row: &Row, n_key_cols: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for v in row.values.iter().take(n_key_cols) {
        match v {
            Value::Null => eat(0),
            Value::Int(i) => {
                eat(1);
                for b in i.to_le_bytes() {
                    eat(b);
                }
            }
            Value::Str(s) => {
                eat(2);
                for b in s.as_bytes() {
                    eat(*b);
                }
                eat(0xff);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_hash_is_stable_and_prefix_sensitive() {
        let a = Row::new(vec![Value::Int(7), Value::Str("x".into())]);
        let b = Row::new(vec![Value::Int(7), Value::Str("y".into())]);
        assert_eq!(key_hash(&a, 1), key_hash(&b, 1));
        assert_ne!(key_hash(&a, 2), key_hash(&b, 2));
        assert_ne!(key_hash(&a, 1), key_hash(&Row::new(vec![Value::Null]), 1));
    }

    #[test]
    fn footprint_counts_payloads() {
        let rows = vec![Row::new(vec![Value::Int(1), Value::Str("abcd".into())])];
        let f = rows_footprint(&rows);
        assert!(f >= 4 + 8, "{f}");
    }

    #[test]
    fn spec_clamps_to_one_shard() {
        assert_eq!(ShardSpec::range(0).shards, 1);
        assert_eq!(ShardSpec::hash(8).partitioning, Partitioning::Hash);
    }

    #[test]
    fn router_is_deterministic_and_in_range() {
        let rows: Vec<Row> = (0..40)
            .map(|i| Row::new(vec![Value::Int(i), Value::Str(format!("s{i}"))]))
            .collect();
        for spec in [ShardSpec::hash(4), ShardSpec::range(4)] {
            let r = ShardRouter::new(spec, 1, rows.len());
            for (i, row) in rows.iter().enumerate() {
                let s = r.route_append(row, i as u64);
                assert!(s < 4);
                assert_eq!(s, r.route_append(row, i as u64));
                let b = r.route_base_slot(i as u32, row);
                assert!(b < 4);
                assert_eq!(b, r.route_base_slot(i as u32, row));
            }
        }
    }

    #[test]
    fn range_router_splits_base_ordinals_contiguously() {
        let r = ShardRouter::new(ShardSpec::range(4), 1, 100);
        let row = Row::new(vec![Value::Int(0)]);
        let shards: Vec<usize> = (0..100).map(|o| r.route_base_slot(o, &row)).collect();
        assert!(shards.windows(2).all(|w| w[0] <= w[1]), "contiguous ranges");
        assert_eq!(shards[0], 0);
        assert_eq!(shards[99], 3);
        // Appends round-robin.
        assert_eq!(r.route_append(&row, 0), 0);
        assert_eq!(r.route_append(&row, 5), 1);
    }

    #[test]
    fn hash_router_with_no_key_cols_hashes_the_whole_row() {
        let r = ShardRouter::new(ShardSpec::hash(8), 0, 10);
        let a = Row::new(vec![Value::Int(1), Value::Int(2)]);
        let b = Row::new(vec![Value::Int(1), Value::Int(3)]);
        assert_eq!(r.route_append(&a, 0), r.route_append(&a, 99));
        // A single-shard router degenerates to shard 0 either way.
        let one = ShardRouter::new(ShardSpec::hash(1), 0, 10);
        assert_eq!(one.route_append(&b, 0), 0);
        assert_eq!(one.route_base_slot(3, &b), 0);
    }
}
