//! Table 4 and the §7.1 graph-search quality/runtime claims.
//!
//! Compares the All / Greedy / Optimal strategies' total sampling cost on
//! the LINEITEM index set (≤ `MAX_WIDTH` columns per index, as the paper
//! caps at 7) across the sampling-fraction grid, at `e = 0.5, q = 0.9`; and
//! measures greedy wall time on the full 300-index set where the exact
//! algorithm blows up.

use crate::experiments::lineitem_index_specs;
use crate::report::Table;
use cadb_compression::CompressionKind;
use cadb_core::exact::exact_assign;
use cadb_core::greedy::{all_sampled, greedy_assign};
use cadb_core::{ErrorModel, EstimationGraph};
use cadb_engine::{Database, WhatIfOptimizer};
use std::time::Instant;

/// Run Table 4: costs of All / Greedy / Optimal per sampling fraction.
pub fn table4(db: &Database, e: f64, q: f64) -> Table {
    let opt = WhatIfOptimizer::new(db);
    // A small cluster (the paper restricts Optimal to LINEITEM with ≤7
    // columns; we use a ≤3-wide subset so Optimal terminates quickly).
    let t_li = db.table_id("lineitem").expect("TPC-H database");
    let cols: Vec<cadb_common::ColumnId> = [1u16, 2, 4, 10]
        .iter()
        .map(|c| cadb_common::ColumnId(*c))
        .collect();
    let mut targets = Vec::new();
    for &a in &cols {
        targets.push(
            cadb_engine::IndexSpec::secondary(t_li, vec![a]).with_compression(CompressionKind::Row),
        );
    }
    for w in cols.windows(2) {
        targets.push(
            cadb_engine::IndexSpec::secondary(t_li, w.to_vec())
                .with_compression(CompressionKind::Row),
        );
    }
    for w in cols.windows(3) {
        targets.push(
            cadb_engine::IndexSpec::secondary(t_li, w.to_vec())
                .with_compression(CompressionKind::Row),
        );
    }

    let mut table = Table::new(
        format!("Table 4: graph-search quality (total sampling cost), e={e}, q={q}"),
        &["f", "All", "Greedy", "Optimal", "Greedy/Optimal"],
    );
    for f in [0.01, 0.025, 0.05, 0.075, 0.10] {
        let mut g_all = EstimationGraph::new(&opt, ErrorModel::default(), f, &targets, &[]);
        let c_all = all_sampled(&mut g_all);
        let mut g_greedy = EstimationGraph::new(&opt, ErrorModel::default(), f, &targets, &[]);
        let c_greedy = greedy_assign(&mut g_greedy, &opt, e, q);
        let mut g_exact = EstimationGraph::new(&opt, ErrorModel::default(), f, &targets, &[]);
        let r_exact = exact_assign(&mut g_exact, &opt, e, q);
        let c_exact = r_exact.best_cost.unwrap_or(f64::NAN);
        table.row(vec![
            format!("{:.1}%", f * 100.0),
            format!("{c_all:.0}"),
            format!("{c_greedy:.0}"),
            format!("{c_exact:.0}"),
            format!("{:.2}", c_greedy / c_exact),
        ]);
    }
    table
}

/// The runtime claim: greedy stays fast as the index count grows, the exact
/// search's explored-state count explodes.
pub fn runtime_scaling(db: &Database) -> Table {
    let opt = WhatIfOptimizer::new(db);
    let all_specs = lineitem_index_specs(db, &[CompressionKind::Row, CompressionKind::Page], 3);
    let mut table = Table::new(
        "Graph-search runtime scaling (greedy ms vs exact visited states)",
        &["#indexes", "greedy_ms", "exact_visits", "exact_truncated"],
    );
    for n in [8usize, 12, 16, 40, all_specs.len().min(300)] {
        let targets = &all_specs[..n.min(all_specs.len())];
        let t0 = Instant::now();
        let mut g = EstimationGraph::new(&opt, ErrorModel::default(), 0.05, targets, &[]);
        greedy_assign(&mut g, &opt, 0.5, 0.9);
        let greedy_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (visits, truncated) = if n <= 16 {
            let mut ge = EstimationGraph::new(&opt, ErrorModel::default(), 0.05, targets, &[]);
            let r = exact_assign(&mut ge, &opt, 0.5, 0.9);
            (r.visited.to_string(), r.truncated.to_string())
        } else {
            ("-".into(), "skipped (blows up)".into())
        };
        table.row(vec![
            targets.len().to_string(),
            format!("{greedy_ms:.1}"),
            visits,
            truncated,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_between_optimal_and_all() {
        let db = cadb_datagen::TpchGen::new(0.05).build().unwrap();
        let t = table4(&db, 0.5, 0.9);
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            let all: f64 = row[1].parse().unwrap();
            let greedy: f64 = row[2].parse().unwrap();
            let optimal: f64 = row[3].parse().unwrap();
            assert!(
                optimal <= greedy + 1.0,
                "optimal {optimal} > greedy {greedy}"
            );
            assert!(greedy <= all + 1.0, "greedy {greedy} > all {all}");
        }
    }

    #[test]
    fn greedy_fast_on_hundreds_of_indexes() {
        let db = cadb_datagen::TpchGen::new(0.02).build().unwrap();
        let opt = WhatIfOptimizer::new(&db);
        let specs = lineitem_index_specs(&db, &[CompressionKind::Row, CompressionKind::Page], 3);
        assert!(specs.len() >= 80, "got {}", specs.len());
        let t0 = Instant::now();
        let mut g = EstimationGraph::new(&opt, ErrorModel::default(), 0.05, &specs, &[]);
        greedy_assign(&mut g, &opt, 0.5, 0.9);
        // "Greedy finished in a second" for 300+ indexes (paper §7.1);
        // generous bound for debug builds.
        assert!(t0.elapsed().as_secs_f64() < 30.0);
    }
}
