//! Public-API snapshot test.
//!
//! Scans every library source file the `cadb` facade re-exports (plus the
//! facade itself) for top-level `pub` declarations and diffs the result
//! against the checked-in listing `tests/api_surface.txt`. An accidental
//! rename, removal, or signature change of public API shows up as a test
//! failure with a readable diff; an intentional change is recorded by
//! regenerating the snapshot:
//!
//! ```sh
//! CADB_UPDATE_API_SURFACE=1 cargo test --test api_surface
//! ```
//!
//! The scanner is deliberately simple — it tracks brace depth (ignoring
//! strings, chars and comments) and records `pub` items at file top level.
//! Methods inside `impl` blocks are not part of the snapshot; the item
//! level is where accidental breaks almost always happen (and what keeps
//! the listing reviewable).

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Library roots the facade exposes (shims and the bench harness are
/// internal and deliberately excluded).
const ROOTS: [&str; 12] = [
    "src",
    "crates/common/src",
    "crates/compression/src",
    "crates/storage/src",
    "crates/shard/src",
    "crates/stats/src",
    "crates/sql/src",
    "crates/engine/src",
    "crates/exec/src",
    "crates/sampling/src",
    "crates/datagen/src",
    "crates/core/src",
];

const SNAPSHOT: &str = "tests/api_surface.txt";

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Strip string literals, char literals and comments from one line of
/// code, carrying block-comment state across lines, so brace counting
/// can't be fooled by `'{'` or `"}"` or doc examples.
fn code_only(line: &str, in_block_comment: &mut bool) -> String {
    let mut out = String::new();
    let mut chars = line.chars().peekable();
    let mut in_string = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        if *in_block_comment {
            if c == '*' && chars.peek() == Some(&'/') {
                chars.next();
                *in_block_comment = false;
            }
            continue;
        }
        if in_string {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        if in_char {
            match c {
                '\\' => {
                    chars.next();
                }
                '\'' => in_char = false,
                _ => {}
            }
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => break, // line comment
            '/' if chars.peek() == Some(&'*') => {
                chars.next();
                *in_block_comment = true;
            }
            '"' => in_string = true,
            // A char literal (not a lifetime like `'a`): treat `'` as
            // opening a char only when what follows ends in a closing
            // quote soon — the cheap heuristic: next char + one more.
            '\'' => {
                let mut ahead = chars.clone();
                match (ahead.next(), ahead.next(), ahead.next()) {
                    (Some('\\'), _, _) => in_char = true,
                    (Some(_), Some('\''), _) => in_char = true,
                    _ => {} // lifetime — leave alone
                }
            }
            _ => out.push(c),
        }
    }
    out
}

/// Extract the top-level `pub` declarations of one file, joined into
/// single normalized lines.
fn public_items(source: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut depth: i64 = 0;
    let mut in_block_comment = false;
    let mut pending: Option<String> = None;
    for raw in source.lines() {
        // Both detection and capture work on the comment/string-stripped
        // view, so `pub` text inside a block comment (or a string) can
        // neither open a declaration nor leak into one.
        let code = code_only(raw, &mut in_block_comment);
        let trimmed = code.trim();
        if depth == 0
            && pending.is_none()
            && trimmed.starts_with("pub ")
            && !trimmed.starts_with("pub(")
        {
            pending = Some(String::new());
        }
        if let Some(sig) = &mut pending {
            if !sig.is_empty() {
                sig.push(' ');
            }
            sig.push_str(trimmed);
            // A declaration ends at its body brace or semicolon (tracked
            // on the comment/string-stripped view of the line).
            let is_use = sig.starts_with("pub use");
            let done = if is_use {
                code.contains(';')
            } else {
                code.contains('{') || code.contains(';')
            };
            if done {
                let sig = pending.take().unwrap_or_default();
                // `pub use` lists keep their braces (a re-export removal is
                // an API break); items with bodies are cut at the brace.
                let cut = if is_use {
                    sig.find(';').unwrap_or(sig.len())
                } else {
                    sig.find(" {")
                        .or_else(|| sig.find('{'))
                        .or_else(|| sig.find(';'))
                        .unwrap_or(sig.len())
                };
                let norm: String = sig[..cut].split_whitespace().collect::<Vec<_>>().join(" ");
                if !norm.is_empty() {
                    items.push(norm);
                }
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    items
}

fn current_surface(repo: &Path) -> String {
    let mut lines: Vec<String> = Vec::new();
    for root in ROOTS {
        let mut files = Vec::new();
        rust_files(&repo.join(root), &mut files);
        for file in files {
            let rel = file
                .strip_prefix(repo)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let source = fs::read_to_string(&file).expect("read source file");
            for item in public_items(&source) {
                lines.push(format!("{rel}: {item}"));
            }
        }
    }
    lines.sort();
    let mut out = String::new();
    for l in &lines {
        let _ = writeln!(out, "{l}");
    }
    out
}

#[test]
fn public_api_matches_snapshot() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"));
    let surface = current_surface(repo);
    let snapshot_path = repo.join(SNAPSHOT);
    if std::env::var("CADB_UPDATE_API_SURFACE").is_ok() {
        fs::write(&snapshot_path, &surface).expect("write snapshot");
        return;
    }
    let snapshot = fs::read_to_string(&snapshot_path).unwrap_or_else(|_| {
        panic!(
            "missing {SNAPSHOT}; run CADB_UPDATE_API_SURFACE=1 cargo test \
             --test api_surface to create it"
        )
    });
    if surface != snapshot {
        let cur: Vec<&str> = surface.lines().collect();
        let old: Vec<&str> = snapshot.lines().collect();
        let mut diff = String::new();
        for l in &old {
            if !cur.contains(l) {
                let _ = writeln!(diff, "- {l}");
            }
        }
        for l in &cur {
            if !old.contains(l) {
                let _ = writeln!(diff, "+ {l}");
            }
        }
        panic!(
            "public API surface changed:\n{diff}\nIf intentional, regenerate \
             with: CADB_UPDATE_API_SURFACE=1 cargo test --test api_surface"
        );
    }
}

#[test]
fn scanner_extracts_top_level_items_only() {
    let src = r#"
//! Doc with braces { } in a code block.
pub struct Foo {
    pub field: u32, // field inside braces — not top-level
}
pub fn bar(
    x: u32,
) -> u32 {
    let s = "}{"; // strings must not confuse the depth tracker
    let c = '{';
    x
}
pub(crate) fn hidden() {}
impl Foo {
    pub fn method(&self) {} // method — not top-level
}
/*
pub fn commented_out() {} — block comments must not open declarations
*/
pub use std::fmt;
"#;
    let items = public_items(src);
    assert_eq!(
        items,
        vec![
            "pub struct Foo".to_string(),
            "pub fn bar( x: u32, ) -> u32".to_string(),
            "pub use std::fmt".to_string(),
        ]
    );
}
