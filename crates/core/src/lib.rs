//! # cadb-core
//!
//! The paper's primary contribution, in two halves:
//!
//! 1. **Compressed-index size estimation** (§4–§5): deduction methods
//!    ([`deduction`]), a stochastic error model with Goodman composition
//!    ([`error_model`], [`math`]), the index/deduction graph with the
//!    greedy and exact search algorithms ([`estimation_graph`]), and the
//!    planner that picks a sampling fraction and executes the chosen
//!    strategy against real samples ([`planner`]).
//! 2. **The compression-aware physical design advisor** (§6): candidate
//!    generation with compressed variants, top-k vs Skyline candidate
//!    selection, index merging, and greedy enumeration with density and
//!    Backtracking modes ([`advisor`]).
//!
//! `Advisor::recommend` with default options reproduces DTAc; switching
//! the options off one by one yields the paper's ablations (DTA, "DTAc
//! (None)", Skyline-only, Backtrack-only).
//!
//! # Strategy architecture
//!
//! The pipeline's variable stages are trait-based extension points
//! ([`strategy`]): [`strategy::SizeEstimator`] (deduction framework /
//! SampleCF-only / exact measurement), [`strategy::CandidateSelection`]
//! (top-k / Skyline) and [`strategy::EnumerationStrategy`] (greedy /
//! density / Backtracking). `Advisor::recommend` maps the legacy
//! [`AdvisorOptions`] flags onto a [`strategy::StrategySet`] and runs the
//! same trait-dispatched path `Advisor::recommend_with` exposes for custom
//! strategies, so the flag presets are byte-identical to trait dispatch and
//! a new pipeline variant is one `impl` block, not a cross-cutting edit.
//!
//! # Parallelism model
//!
//! The expensive pipeline stages run as **batches on a scoped worker pool**
//! (`cadb_common::par`): the planner's SampleCF execution round
//! ([`cadb_sampling::sample_cf_batch`]), the greedy search's per-level
//! decision scoring ([`greedy::greedy_assign_with`], level-synchronous so
//! the paper's narrow → wide order is preserved), the advisor's per-query
//! candidate costing (skyline/top-k selection) and each enumeration round's
//! configuration sweep (`WhatIfOptimizer::cost_workload_for`).
//!
//! **Determinism contract:** every stage produces bit-for-bit the same
//! output for every `Parallelism` setting — same CFs, same chosen
//! deductions, same recommendation. Parallelism only changes wall-clock
//! time. Force the serial path with
//! [`cadb_engine::Parallelism::Serial`] via [`AdvisorOptions::parallelism`]
//! / `PlannerOptions::parallelism` (the integration suite
//! `tests/parallel_equivalence.rs` pins the equivalence on TPC-H and
//! TPC-DS across thread counts and seeds).

#![warn(missing_docs)]

pub mod advisor;
pub mod deduction;
pub mod error_model;
pub mod estimation_graph;
pub mod exact;
pub mod greedy;
pub mod math;
pub mod planner;
pub mod strategy;

pub use advisor::{Advisor, AdvisorOptions, FeatureSet, Recommendation};
pub use error_model::{
    ErrorModel, EstimateDistribution, MeasuredResidual, PathClass, QueryPathResidual,
};
pub use estimation_graph::{EstimationGraph, NodeState};
pub use planner::{EstimationPlanner, PlannerOptions, SizeEstimationReport};
pub use strategy::{
    AdvisorContext, Backtracking, CandidateSelection, DeductionEstimator, DensityGreedy,
    EnumerationStrategy, EstimationContext, ExactEstimator, Greedy, SampleCfEstimator,
    SizeEstimator, Skyline, StrategySet, TopK,
};
