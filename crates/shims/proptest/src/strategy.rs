//! The [`Strategy`] trait and the built-in strategies for ranges, tuples,
//! and constants.
//!
//! Each strategy both *generates* values and proposes *shrink* candidates
//! for a failing value: strictly-simpler replacements, most aggressive
//! first. The runner ([`crate::test_runner::run_case`]) adopts the first
//! candidate that still fails and re-shrinks from there, which makes the
//! integer shrinkers below (propose the range start, then the midpoint,
//! then one step down) a binary search toward the range start — the
//! reported counterexample is locally minimal.
//!
//! `prop_map`ped strategies do not shrink (the mapping is not invertible
//! in this shim; real proptest threads a value tree through the map).

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Strictly-simpler candidate replacements for a failing `value`, most
    /// aggressive first. The default is "cannot shrink".
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
    // No shrink: the map is not invertible.
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 candidates", self.reason);
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        // Shrink through the inner strategy, keeping only candidates the
        // filter still accepts.
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.f)(v))
            .collect()
    }
}

/// Binary-search shrink candidates for an integer failing at `v`, toward
/// `origin` (the simplest value the strategy can produce): origin first,
/// then the midpoint, then one step closer — dedup'd, all ≠ `v`.
pub(crate) fn shrink_int_toward(v: i128, origin: i128) -> Vec<i128> {
    if v == origin {
        return Vec::new();
    }
    let mid = origin + (v - origin) / 2;
    let step = if v > origin { v - 1 } else { v + 1 };
    let mut out = vec![origin];
    for c in [mid, step] {
        if c != v && !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.uniform_i128(self.start as i128, self.end as i128) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(*value as i128, self.start as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.uniform_i128(*self.start() as i128, *self.end() as i128 + 1) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(*value as i128, *self.start() as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value != self.start {
            out.push(self.start);
            let mid = self.start + (value - self.start) / 2.0;
            if mid != *value && mid != self.start {
                out.push(mid);
            }
        }
        out
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }

    fn shrink(&self, value: &f32) -> Vec<f32> {
        let mut out = Vec::new();
        if *value != self.start {
            out.push(self.start);
            let mid = self.start + (value - self.start) / 2.0;
            if mid != *value && mid != self.start {
                out.push(mid);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Shrink one component at a time, earlier components first.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
