//! # cadb — Compression Aware Physical Database Design
//!
//! A from-scratch Rust reproduction of *"Compression Aware Physical
//! Database Design"* (Kimura, Narasayya, Syamala — PVLDB 4(10), 2011),
//! including the full substrate the paper's system ran on: a page-oriented
//! storage engine with real ROW/PAGE/global-dictionary/RLE compression, a
//! mini SQL front end, an optimizer with a compression-aware cost model and
//! what-if API, the sampling infrastructure (amortized samples, join
//! synopses, MV samples, SampleCF), the size-estimation framework
//! (deductions + error model + graph search), and the DTA/DTAc advisor
//! (Skyline candidate selection, Backtracking enumeration).
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! paths and hosts the runnable examples and integration tests.
//!
//! ## Quick start
//!
//! ```
//! use cadb::datagen::TpchGen;
//! use cadb::core::{Advisor, AdvisorOptions};
//!
//! let gen = TpchGen::new(0.01);            // tiny TPC-H-like database
//! let db = gen.build().unwrap();
//! let workload = gen.workload(&db).unwrap();
//! let budget = 0.3 * db.base_data_bytes() as f64;
//! let advisor = Advisor::new(&db, AdvisorOptions::dtac(budget));
//! let rec = advisor.recommend(&workload).unwrap();
//! assert!(rec.improvement_percent() > 0.0);
//! assert!(rec.total_bytes() <= budget);
//! ```

pub use cadb_common as common;
pub use cadb_compression as compression;
pub use cadb_core as core;
pub use cadb_datagen as datagen;
pub use cadb_engine as engine;
pub use cadb_sampling as sampling;
pub use cadb_sql as sql;
pub use cadb_stats as stats;
pub use cadb_storage as storage;
