//! Per-page local dictionary encoding.
//!
//! The second stage of PAGE compression (§2.1): frequently occurring values
//! on a page are replaced with small pointers into a page-local dictionary.
//! Because the dictionary is rebuilt per page, the achieved size depends on
//! how values are clustered across pages — this is the canonical ORD-DEP
//! method and the reason the paper's `ColExt` deduction needs the
//! fragmentation penalty (§4.2).
//!
//! Block layout:
//! ```text
//! [n_dict: u16]  n_dict × ( [len: u16][bytes] )
//! [n: u16]       n × token(u16)   -- 0xFFFF = literal escape,
//!                                    followed by [len: u16][bytes]
//! ```
//!
//! A value enters the dictionary only when doing so shrinks the block:
//! with frequency `f` and encoded length `L`, literals cost `f·(L+2)` while
//! the dictionary costs `(L+2) + 2f`; we require `f ≥ 2` and positive gain.

use crate::prefix::{read_slice, read_u16};
use cadb_common::{CadbError, Result};
use std::collections::HashMap;

/// Token reserved to mark an inline literal.
const LITERAL: u16 = 0xFFFF;
/// Maximum number of dictionary entries per page.
const MAX_DICT: usize = 0xFFFE;

/// Encode byte-strings with a page-local dictionary.
pub fn encode(values: &[Vec<u8>]) -> Vec<u8> {
    // Count frequencies preserving first-seen order for determinism.
    let mut freq: HashMap<&[u8], u32> = HashMap::new();
    let mut order: Vec<&[u8]> = Vec::new();
    for v in values {
        let e = freq.entry(v.as_slice()).or_insert(0);
        if *e == 0 {
            order.push(v.as_slice());
        }
        *e += 1;
    }
    // Admit profitable entries: f·(L+2) > (L+2) + 2f  ⇔  (f−1)(L+2) > 2f.
    let mut dict: Vec<&[u8]> = order
        .into_iter()
        .filter(|v| {
            let f = freq[*v] as usize;
            let l = v.len() + 2;
            f >= 2 && (f - 1) * l > 2 * f
        })
        .collect();
    // Most frequent first so the hottest values stay in even if truncated.
    dict.sort_by(|a, b| freq[b].cmp(&freq[a]).then_with(|| a.cmp(b)));
    dict.truncate(MAX_DICT);
    let token_of: HashMap<&[u8], u16> = dict
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, i as u16))
        .collect();

    let mut out = Vec::new();
    out.extend_from_slice(&(dict.len() as u16).to_le_bytes());
    for d in &dict {
        out.extend_from_slice(&(d.len() as u16).to_le_bytes());
        out.extend_from_slice(d);
    }
    out.extend_from_slice(&(values.len() as u16).to_le_bytes());
    for v in values {
        match token_of.get(v.as_slice()) {
            Some(tok) => out.extend_from_slice(&tok.to_le_bytes()),
            None => {
                out.extend_from_slice(&LITERAL.to_le_bytes());
                out.extend_from_slice(&(v.len() as u16).to_le_bytes());
                out.extend_from_slice(v);
            }
        }
    }
    out
}

/// One token of a local-dictionary block: either a pointer into the
/// page-local dictionary or an inline literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Index into the dictionary returned alongside the tokens.
    Code(u16),
    /// A value stored inline because the dictionary did not pay for it.
    Literal(Vec<u8>),
}

/// Decode a local-dictionary block into its `(dictionary, tokens)` parts
/// **without** expanding tokens to values — vectorized executors evaluate a
/// predicate once per dictionary entry and then test each row by its code.
pub fn decode_parts(block: &[u8]) -> Result<(Vec<Vec<u8>>, Vec<Token>)> {
    let mut pos = 0usize;
    let n_dict = read_u16(block, &mut pos)? as usize;
    let mut dict = Vec::with_capacity(n_dict);
    for _ in 0..n_dict {
        let len = read_u16(block, &mut pos)? as usize;
        dict.push(read_slice(block, &mut pos, len)?.to_vec());
    }
    let n = read_u16(block, &mut pos)? as usize;
    let mut tokens = Vec::with_capacity(n);
    for _ in 0..n {
        let tok = read_u16(block, &mut pos)?;
        if tok == LITERAL {
            let len = read_u16(block, &mut pos)? as usize;
            tokens.push(Token::Literal(read_slice(block, &mut pos, len)?.to_vec()));
        } else {
            if tok as usize >= dict.len() {
                return Err(CadbError::Storage(format!(
                    "dictionary token {tok} out of range"
                )));
            }
            tokens.push(Token::Code(tok));
        }
    }
    Ok((dict, tokens))
}

/// Decode a local-dictionary block.
pub fn decode(block: &[u8]) -> Result<Vec<Vec<u8>>> {
    let (dict, tokens) = decode_parts(block)?;
    Ok(tokens
        .into_iter()
        .map(|t| match t {
            Token::Code(c) => dict[c as usize].clone(),
            Token::Literal(v) => v,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bytes(s: &str) -> Vec<u8> {
        s.as_bytes().to_vec()
    }

    #[test]
    fn paper_example_round_trip() {
        // Page {AA, BB, BB, AA} → dictionary {AA, BB} + tokens (§2.1).
        let vals = vec![bytes("AA"), bytes("BB"), bytes("BB"), bytes("AA")];
        let block = encode(&vals);
        assert_eq!(decode(&block).unwrap(), vals);
    }

    #[test]
    fn repeated_long_values_compress() {
        let v = bytes("a-rather-long-repeated-string");
        let vals: Vec<Vec<u8>> = (0..50).map(|_| v.clone()).collect();
        let block = encode(&vals);
        let plain: usize = vals.iter().map(|x| x.len()).sum();
        assert!(block.len() < plain / 5);
        assert_eq!(decode(&block).unwrap(), vals);
    }

    #[test]
    fn unique_values_skip_dictionary() {
        let vals: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 4]).collect();
        let block = encode(&vals);
        // No value repeats, so the dictionary must be empty.
        assert_eq!(u16::from_le_bytes([block[0], block[1]]), 0);
        assert_eq!(decode(&block).unwrap(), vals);
    }

    #[test]
    fn short_repeats_not_admitted_when_unprofitable() {
        // f = 2, L+2 = 3: (f−1)·3 = 3 ≤ 2f = 4 → not profitable.
        let vals = vec![bytes("x"), bytes("x")];
        let block = encode(&vals);
        assert_eq!(u16::from_le_bytes([block[0], block[1]]), 0);
        assert_eq!(decode(&block).unwrap(), vals);
    }

    #[test]
    fn empty_input() {
        assert!(decode(&encode(&[])).unwrap().is_empty());
    }

    #[test]
    fn decode_parts_exposes_codes_and_literals() {
        let hot = bytes("a-long-repeated-value");
        let mut vals: Vec<Vec<u8>> = (0..10).map(|_| hot.clone()).collect();
        vals.push(bytes("once"));
        let (dict, tokens) = decode_parts(&encode(&vals)).unwrap();
        assert_eq!(dict, vec![hot.clone()]);
        assert_eq!(tokens.len(), 11);
        assert_eq!(
            tokens
                .iter()
                .filter(|t| matches!(t, Token::Code(0)))
                .count(),
            10
        );
        assert_eq!(tokens[10], Token::Literal(bytes("once")));
    }

    #[test]
    fn corrupt_token_errors() {
        let vals = vec![bytes("aaaa"); 8];
        let mut block = encode(&vals);
        // Point the first token past the dictionary (not the literal escape).
        let tok_pos = block.len() - 8 * 2;
        block[tok_pos] = 0x42;
        block[tok_pos + 1] = 0x00;
        assert!(decode(&block).is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip(vals in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..24), 0..80)) {
            let block = encode(&vals);
            prop_assert_eq!(decode(&block).unwrap(), vals);
        }

        #[test]
        fn prop_more_duplicates_never_bigger(
            base in proptest::collection::vec(any::<u8>(), 8..16),
            n in 8usize..64,
        ) {
            // A page of n copies must encode no larger than n distinct values
            // of the same length.
            let dup: Vec<Vec<u8>> = (0..n).map(|_| base.clone()).collect();
            let mut distinct: Vec<Vec<u8>> = Vec::with_capacity(n);
            for i in 0..n {
                let mut v = base.clone();
                v[0] = v[0].wrapping_add(i as u8);
                if i >= 256 { v[1] = v[1].wrapping_add(1); }
                distinct.push(v);
            }
            prop_assert!(encode(&dup).len() <= encode(&distinct).len());
        }
    }
}
