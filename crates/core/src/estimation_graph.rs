//! The index/deduction graph of §5.2 (Figure 3).
//!
//! Index nodes carry a state (`None` → `Sampled` / `Deduced` / `Existing`);
//! deduction choices connect a parent node to child nodes whose sizes can
//! produce the parent's size at zero sampling cost. The search algorithms
//! ([`crate::greedy`], [`crate::exact`]) assign states minimizing total
//! sampling cost subject to the accuracy constraint `(e, q)`.

use crate::error_model::{ErrorModel, EstimateDistribution};
use cadb_common::{ColumnId, TableId};
use cadb_compression::analyze::PAGE_PAYLOAD;
use cadb_compression::CompressionKind;
use cadb_engine::{IndexSpec, WhatIfOptimizer};
use std::collections::{BTreeSet, HashMap};

/// How a node's size is (to be) obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeState {
    /// Undecided.
    None,
    /// SampleCF will run on this index.
    Sampled,
    /// Deduced from children via the recorded choice.
    Deduced(DeductionChoice),
    /// Pre-existing index: exact size from the catalog, zero cost.
    Existing,
}

/// One way to deduce a parent from children.
#[derive(Debug, Clone, PartialEq)]
pub struct DeductionChoice {
    /// Child node indices.
    pub children: Vec<usize>,
    /// ColSet (same column set) or ColExt (column extrapolation).
    pub kind: DeductionKind,
}

/// The two deduction families of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeductionKind {
    /// Same column set, order-independent compression.
    ColSet,
    /// Column extrapolation from a partition of the column set.
    ColExt,
}

/// One index node.
#[derive(Debug, Clone)]
pub struct IndexNode {
    /// The index this node stands for.
    pub spec: IndexSpec,
    /// Whether the caller asked for this index's size (vs. an auxiliary
    /// narrower index created to enable deductions).
    pub is_target: bool,
    /// Assigned state.
    pub state: NodeState,
    /// Sampling cost of running SampleCF on this node at the graph's
    /// fraction: sample data pages of the uncompressed index (§5.1).
    pub sample_cost: f64,
}

/// The graph plus the error model and sampling fraction it is priced at.
pub struct EstimationGraph {
    /// All nodes; targets first, auxiliaries appended.
    pub nodes: Vec<IndexNode>,
    /// Error model used for accuracy accounting.
    pub model: ErrorModel,
    /// Sampling fraction `f`.
    pub fraction: f64,
    by_colset: HashMap<(TableId, BTreeSet<ColumnId>, CompressionKind), Vec<usize>>,
}

impl EstimationGraph {
    /// Build a graph over the given targets (all must be compressed specs).
    pub fn new(
        opt: &WhatIfOptimizer<'_>,
        model: ErrorModel,
        fraction: f64,
        targets: &[IndexSpec],
        existing: &[IndexSpec],
    ) -> Self {
        let mut g = EstimationGraph {
            nodes: Vec::new(),
            model,
            fraction,
            by_colset: HashMap::new(),
        };
        for e in existing {
            let id = g.ensure_node(opt, e.clone(), false);
            g.nodes[id].state = NodeState::Existing;
        }
        for t in targets {
            let id = g.ensure_node(opt, t.clone(), true);
            g.nodes[id].is_target = true;
        }
        g
    }

    /// Whether a node can participate in deductions at all: plain table
    /// indexes only (partial filters and MVs change the row population).
    pub fn deducible(spec: &IndexSpec) -> bool {
        spec.partial_filter.is_none() && spec.mv.is_none() && spec.compression.is_compressed()
    }

    /// Find or create a node for a spec; returns its id.
    pub fn ensure_node(
        &mut self,
        opt: &WhatIfOptimizer<'_>,
        spec: IndexSpec,
        target: bool,
    ) -> usize {
        if let Some(i) = self.nodes.iter().position(|n| n.spec == spec) {
            if target {
                self.nodes[i].is_target = true;
            }
            return i;
        }
        let unc = opt.estimate_uncompressed_size(&spec);
        let sample_cost = (unc.bytes * self.fraction / PAGE_PAYLOAD as f64).max(1.0);
        let id = self.nodes.len();
        self.nodes.push(IndexNode {
            is_target: target,
            state: NodeState::None,
            sample_cost,
            spec: spec.clone(),
        });
        if Self::deducible(&spec) {
            self.by_colset
                .entry((spec.table, spec.column_set(), spec.compression))
                .or_default()
                .push(id);
        }
        id
    }

    /// Whether a node's size is known (sampled/deduced/existing).
    pub fn known(&self, id: usize) -> bool {
        !matches!(self.nodes[id].state, NodeState::None)
    }

    /// Enumerate the deduction choices available for a node, creating
    /// singleton child nodes as needed (the paper's "add all child
    /// deduction nodes … add children of the deduction nodes").
    pub fn deduction_choices(
        &mut self,
        opt: &WhatIfOptimizer<'_>,
        id: usize,
    ) -> Vec<DeductionChoice> {
        let spec = self.nodes[id].spec.clone();
        if !Self::deducible(&spec) {
            return Vec::new();
        }
        let mut out = Vec::new();
        let colset = spec.column_set();

        // ColSet: another node with the same column set and ORD-IND method.
        if !spec.compression.order_dependent() {
            if let Some(sames) = self
                .by_colset
                .get(&(spec.table, colset.clone(), spec.compression))
            {
                for &other in sames {
                    if other != id {
                        out.push(DeductionChoice {
                            children: vec![other],
                            kind: DeductionKind::ColSet,
                        });
                    }
                }
            }
        }

        if colset.len() < 2 {
            return out;
        }

        // ColExt via existing narrower nodes: greedy disjoint cover by the
        // largest usable subsets, remainder filled with singletons.
        let mut subset_nodes: Vec<(usize, BTreeSet<ColumnId>)> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| {
                *i != id
                    && Self::deducible(&n.spec)
                    && n.spec.table == spec.table
                    && n.spec.compression == spec.compression
                    && !n.spec.clustered
                    && n.spec.column_set().is_subset(&colset)
                    && n.spec.column_set().len() < colset.len()
            })
            .map(|(i, n)| (i, n.spec.column_set()))
            .collect();
        subset_nodes.sort_by_key(|(_, s)| std::cmp::Reverse(s.len()));

        let mut cover_children: Vec<usize> = Vec::new();
        let mut covered: BTreeSet<ColumnId> = BTreeSet::new();
        for (i, s) in &subset_nodes {
            if s.iter().all(|c| !covered.contains(c)) {
                cover_children.push(*i);
                covered.extend(s.iter().copied());
            }
        }
        let missing: Vec<ColumnId> = colset
            .iter()
            .filter(|c| !covered.contains(c))
            .copied()
            .collect();
        let mut cover = cover_children.clone();
        for c in missing {
            let child =
                IndexSpec::secondary(spec.table, vec![c]).with_compression(spec.compression);
            cover.push(self.ensure_node(opt, child, false));
        }
        let trivial = cover.is_empty() || (cover.len() == 1 && cover[0] == id);
        if !trivial {
            out.push(DeductionChoice {
                children: cover,
                kind: DeductionKind::ColExt,
            });
        }

        // The all-singletons decomposition (always available).
        let singles: Vec<usize> = colset
            .iter()
            .map(|c| {
                let child =
                    IndexSpec::secondary(spec.table, vec![*c]).with_compression(spec.compression);
                self.ensure_node(opt, child, false)
            })
            .collect();
        let single_choice = DeductionChoice {
            children: singles,
            kind: DeductionKind::ColExt,
        };
        if !out.contains(&single_choice) {
            out.push(single_choice);
        }
        out
    }

    /// Distribution of a node's estimate under the current assignment.
    /// Returns `None` while the node (or a dependency) is undecided.
    pub fn distribution(&self, id: usize) -> Option<EstimateDistribution> {
        match &self.nodes[id].state {
            NodeState::None => None,
            NodeState::Existing => Some(EstimateDistribution::exact()),
            NodeState::Sampled => Some(
                self.model
                    .samplecf(self.nodes[id].spec.compression, self.fraction),
            ),
            NodeState::Deduced(choice) => {
                let mut parts = Vec::with_capacity(choice.children.len() + 1);
                for &c in &choice.children {
                    parts.push(self.distribution(c)?);
                }
                parts.push(match choice.kind {
                    DeductionKind::ColSet => self.model.colset(),
                    DeductionKind::ColExt => self
                        .model
                        .colext(self.nodes[id].spec.compression, choice.children.len()),
                });
                Some(EstimateDistribution::product(&parts))
            }
        }
    }

    /// Distribution a node *would* have if deduced via `choice`, children
    /// that are still `None` assumed `Sampled`.
    pub fn hypothetical_distribution(
        &self,
        id: usize,
        choice: &DeductionChoice,
    ) -> EstimateDistribution {
        let mut parts = Vec::with_capacity(choice.children.len() + 1);
        for &c in &choice.children {
            let d = self.distribution(c).unwrap_or_else(|| {
                self.model
                    .samplecf(self.nodes[c].spec.compression, self.fraction)
            });
            parts.push(d);
        }
        parts.push(match choice.kind {
            DeductionKind::ColSet => self.model.colset(),
            DeductionKind::ColExt => self
                .model
                .colext(self.nodes[id].spec.compression, choice.children.len()),
        });
        EstimateDistribution::product(&parts)
    }

    /// Total sampling cost of the current assignment (§5.1 objective).
    pub fn total_cost(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Sampled)
            .map(|n| n.sample_cost)
            .sum()
    }

    /// Whether every target meets the accuracy constraint.
    pub fn feasible(&self, e: f64, q: f64) -> bool {
        self.nodes.iter().enumerate().all(|(i, n)| {
            !n.is_target
                || self
                    .distribution(i)
                    .map(|d| d.prob_within(e) >= q)
                    .unwrap_or(false)
        })
    }

    /// Target node ids, in insertion order.
    pub fn targets(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_target)
            .map(|(i, _)| i)
            .collect()
    }

    /// Target ids ordered narrow → wide (the greedy processing order).
    pub fn targets_narrow_to_wide(&self) -> Vec<usize> {
        let mut t = self.targets();
        t.sort_by_key(|&i| self.nodes[i].spec.column_set().len());
        t
    }

    /// Remove auxiliary nodes that ended up unused (step 13–14 of the
    /// greedy pseudocode). Keeps node ids stable by only *clearing* state.
    pub fn prune_unused(&mut self) {
        let mut used = vec![false; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if n.is_target {
                used[i] = true;
            }
        }
        // Propagate usage wide → narrow through deduction children.
        let order: Vec<usize> = {
            let mut o: Vec<usize> = (0..self.nodes.len()).collect();
            o.sort_by_key(|&i| std::cmp::Reverse(self.nodes[i].spec.column_set().len()));
            o
        };
        for i in order {
            if !used[i] {
                continue;
            }
            if let NodeState::Deduced(choice) = &self.nodes[i].state {
                for &c in &choice.children {
                    used[c] = true;
                }
            }
        }
        for (i, n) in self.nodes.iter_mut().enumerate() {
            if !used[i] && n.state == NodeState::Sampled {
                n.state = NodeState::None;
            }
        }
    }

    /// Count of nodes in each state `(sampled, deduced, existing)`.
    pub fn state_counts(&self) -> (usize, usize, usize) {
        let mut s = (0, 0, 0);
        for n in &self.nodes {
            match n.state {
                NodeState::Sampled => s.0 += 1,
                NodeState::Deduced(_) => s.1 += 1,
                NodeState::Existing => s.2 += 1,
                NodeState::None => {}
            }
        }
        s
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use cadb_common::{ColumnDef, DataType, Row, TableSchema, Value};

    pub(crate) fn test_db() -> cadb_engine::Database {
        let mut db = cadb_engine::Database::new();
        let t = db
            .create_table(
                TableSchema::new(
                    "t",
                    vec![
                        ColumnDef::new("a", DataType::Int),
                        ColumnDef::new("b", DataType::Char { len: 8 }),
                        ColumnDef::new("c", DataType::Int),
                        ColumnDef::new("d", DataType::Int),
                    ],
                    vec![ColumnId(0)],
                )
                .unwrap(),
            )
            .unwrap();
        let rows: Vec<Row> = (0..8_000)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i % 100),
                    Value::Str(format!("x{}", i % 7)),
                    Value::Int(i % 13),
                    Value::Int(i),
                ])
            })
            .collect();
        db.insert_rows(t, rows).unwrap();
        db
    }

    pub(crate) fn spec(cols: &[u16]) -> IndexSpec {
        IndexSpec::secondary(TableId(0), cols.iter().map(|c| ColumnId(*c)).collect())
            .with_compression(CompressionKind::Row)
    }

    #[test]
    fn graph_construction_and_cost() {
        let db = test_db();
        let opt = WhatIfOptimizer::new(&db);
        let targets = vec![spec(&[0, 1]), spec(&[0])];
        let g = EstimationGraph::new(&opt, ErrorModel::default(), 0.05, &targets, &[]);
        assert_eq!(g.targets().len(), 2);
        let order = g.targets_narrow_to_wide();
        assert_eq!(g.nodes[order[0]].spec, spec(&[0]));
        assert!(g.nodes[order[1]].sample_cost > g.nodes[order[0]].sample_cost);
        assert_eq!(g.total_cost(), 0.0);
    }

    #[test]
    fn colset_choice_found() {
        let db = test_db();
        let opt = WhatIfOptimizer::new(&db);
        let targets = vec![spec(&[0, 1]), spec(&[1, 0])];
        let mut g = EstimationGraph::new(&opt, ErrorModel::default(), 0.05, &targets, &[]);
        let choices = g.deduction_choices(&opt, 1);
        assert!(choices
            .iter()
            .any(|c| c.kind == DeductionKind::ColSet && c.children == vec![0]));
    }

    #[test]
    fn colext_creates_singletons() {
        let db = test_db();
        let opt = WhatIfOptimizer::new(&db);
        let targets = vec![spec(&[0, 1, 2])];
        let mut g = EstimationGraph::new(&opt, ErrorModel::default(), 0.05, &targets, &[]);
        let n_before = g.nodes.len();
        let choices = g.deduction_choices(&opt, 0);
        assert!(!choices.is_empty());
        assert_eq!(g.nodes.len(), n_before + 3);
        let singles = choices
            .iter()
            .find(|c| c.children.len() == 3)
            .expect("all-singletons choice");
        for &c in &singles.children {
            assert!(!g.nodes[c].is_target);
            assert_eq!(g.nodes[c].spec.key_cols.len(), 1);
        }
    }

    #[test]
    fn existing_indexes_are_free_and_exact() {
        let db = test_db();
        let opt = WhatIfOptimizer::new(&db);
        let g = EstimationGraph::new(
            &opt,
            ErrorModel::default(),
            0.05,
            &[spec(&[0])],
            &[spec(&[1])],
        );
        let existing = g
            .nodes
            .iter()
            .position(|n| n.state == NodeState::Existing)
            .unwrap();
        assert_eq!(
            g.distribution(existing),
            Some(EstimateDistribution::exact())
        );
        assert_eq!(g.total_cost(), 0.0);
    }

    #[test]
    fn distribution_composes_through_deduction() {
        let db = test_db();
        let opt = WhatIfOptimizer::new(&db);
        let targets = vec![spec(&[0, 1])];
        let mut g = EstimationGraph::new(&opt, ErrorModel::default(), 0.05, &targets, &[]);
        let choices = g.deduction_choices(&opt, 0);
        let singles = choices
            .iter()
            .find(|c| c.children.len() == 2)
            .unwrap()
            .clone();
        for &c in &singles.children {
            g.nodes[c].state = NodeState::Sampled;
        }
        g.nodes[0].state = NodeState::Deduced(singles);
        let d = g.distribution(0).unwrap();
        let sampled = g.model.samplecf(CompressionKind::Row, 0.05);
        assert!(d.sd > sampled.sd);
        assert!(g.feasible(0.5, 0.9));
        assert!(!g.feasible(0.001, 0.999));
    }

    #[test]
    fn partial_and_mv_not_deducible() {
        let mut p = spec(&[0]);
        p.partial_filter = Some(cadb_engine::Predicate::eq(
            TableId(0),
            ColumnId(1),
            Value::Str("x1".into()),
        ));
        assert!(!EstimationGraph::deducible(&p));
        assert!(!EstimationGraph::deducible(
            &spec(&[0]).with_compression(CompressionKind::None)
        ));
        assert!(EstimationGraph::deducible(&spec(&[0])));
    }

    #[test]
    fn prune_clears_unused_auxiliaries() {
        let db = test_db();
        let opt = WhatIfOptimizer::new(&db);
        let mut g = EstimationGraph::new(&opt, ErrorModel::default(), 0.05, &[spec(&[0, 1])], &[]);
        let _ = g.deduction_choices(&opt, 0);
        for n in &mut g.nodes {
            n.state = NodeState::Sampled;
        }
        let cost_all = g.total_cost();
        g.prune_unused();
        assert!(g.total_cost() < cost_all);
        let (sampled, ..) = g.state_counts();
        assert_eq!(sampled, 1);
    }
}
