//! Lint: library crates must not print.
//!
//! With `cadb_common::obs` in place, every library-side "interesting
//! number" has a structured home — a counter, gauge, histogram or span —
//! so a `println!`/`eprintln!` in a library crate is always a mistake:
//! either leftover debugging or telemetry that should be a metric. This
//! test walks every library source file in the workspace and fails on any
//! non-comment occurrence.
//!
//! Exempt by design: the `bench` crate (the `repro` binary and report
//! tables print on purpose), the vendored `shims` crates (external idiom,
//! not ours), and integration-test / benchmark / binary directories. A
//! deliberate exception in library code can carry `// lint: allow-print`
//! on the same line, with a comment nearby saying why.

use std::path::{Path, PathBuf};

/// Library source roots the lint walks: every workspace crate's `src`
/// except the exempt ones, plus the facade's own `src`.
fn library_roots() -> Vec<PathBuf> {
    let ws = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut roots = vec![ws.join("src")];
    let crates = ws.join("crates");
    let mut entries: Vec<_> = std::fs::read_dir(&crates)
        .expect("crates dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for dir in entries {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name == "bench" || name == "shims" {
            continue;
        }
        let src = dir.join("src");
        if src.is_dir() {
            roots.push(src);
        }
    }
    roots
}

fn rust_files(root: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<_> = std::fs::read_dir(root)
        .unwrap_or_else(|e| panic!("read {}: {e}", root.display()))
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            // Binary/bench/test subtrees under src are user-facing and may
            // print.
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "bin" || name == "benches" || name == "tests" {
                continue;
            }
            rust_files(&p, out);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// `true` when the line's `println!`/`eprintln!` occurrence is inside a
/// line comment (`//` before the macro) — doc examples and prose mention
/// the macros legitimately.
fn only_in_comment(line: &str, needle: &str) -> bool {
    match (line.find(needle), line.find("//")) {
        (Some(m), Some(c)) => c < m,
        _ => false,
    }
}

#[test]
fn library_crates_do_not_print() {
    let mut files = Vec::new();
    for root in library_roots() {
        rust_files(&root, &mut files);
    }
    assert!(
        files.len() > 30,
        "lint walked too few files: {}",
        files.len()
    );
    let mut violations = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        for (i, line) in text.lines().enumerate() {
            for needle in ["println!", "eprintln!"] {
                if line.contains(needle)
                    && !only_in_comment(line, needle)
                    && !line.contains("lint: allow-print")
                {
                    violations.push(format!("{}:{}: {}", file.display(), i + 1, line.trim()));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "library code must publish through cadb_common::obs, not print:\n{}",
        violations.join("\n")
    );
}
