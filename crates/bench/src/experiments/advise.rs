//! `advise` — one full DTAc tuning run with machine-readable output.
//!
//! Runs the advisor on the TPC-H workload at the requested scale and
//! prints the [`Recommendation`]; with `--json` the recommendation and the
//! [`SizeEstimationReport`] re-pricing the chosen compressed structures are
//! emitted as one JSON object (the `to_json()` wire forms the downstream
//! tooling consumes).

use cadb_common::json::JsonObject;
use cadb_core::strategy::{DeductionEstimator, EstimationContext, SizeEstimator};
use cadb_core::{Advisor, AdvisorOptions, Recommendation, SizeEstimationReport};
use cadb_engine::{Database, IndexSpec, WhatIfOptimizer, Workload};
use cadb_sampling::SampleManager;

/// Budget fraction the advise run tunes under.
const BUDGET_FRACTION: f64 = 0.3;

/// Run DTAc once; re-estimate the recommended compressed structures so the
/// output carries both report types.
pub fn advise(db: &Database, workload: &Workload) -> (Recommendation, SizeEstimationReport) {
    let budget = BUDGET_FRACTION * db.base_data_bytes() as f64;
    let options = AdvisorOptions::dtac(budget);
    let rec = Advisor::new(db, options.clone())
        .recommend(workload)
        .expect("advisor run");

    let compressed: Vec<IndexSpec> = rec
        .configuration
        .structures()
        .iter()
        .filter(|s| s.spec.compression.is_compressed())
        .map(|s| s.spec.clone())
        .collect();
    let opt = WhatIfOptimizer::new(db).with_parallelism(options.parallelism);
    let manager = SampleManager::new(db, options.seed);
    let ctx = EstimationContext {
        opt: &opt,
        manager: &manager,
    };
    let report = DeductionEstimator::new(options.estimation)
        .estimate_sizes(&ctx, &compressed, &[])
        .expect("size estimation");
    (rec, report)
}

/// The combined JSON document `repro -- advise --json` prints.
pub fn advise_json(db: &Database, workload: &Workload, scale: f64) -> String {
    let (rec, report) = advise(db, workload);
    JsonObject::new()
        .str("experiment", "advise")
        .num("scale", scale)
        .num("budget_fraction", BUDGET_FRACTION)
        .raw("recommendation", &rec.to_json())
        .raw("size_estimation", &report.to_json())
        .finish()
}

/// Human-readable rendering of the same run.
pub fn advise_text(db: &Database, workload: &Workload) -> String {
    let (rec, report) = advise(db, workload);
    let mut out = String::new();
    out.push_str(&format!(
        "advise: DTAc at {:.0}% budget — {} structures, {:.1} KiB, improvement {:.1}%\n",
        BUDGET_FRACTION * 100.0,
        rec.configuration.len(),
        rec.total_bytes() / 1024.0,
        rec.improvement_percent()
    ));
    for s in rec.configuration.structures() {
        out.push_str(&format!(
            "  {:<55} {:>9.1} KiB (cf {:.2})\n",
            s.spec.to_string(),
            s.size.bytes / 1024.0,
            s.size.compression_fraction
        ));
    }
    out.push_str(&format!(
        "size estimation: f={:.1}%, {} sampled / {} deduced, feasible={}\n",
        report.fraction * 100.0,
        report.sampled,
        report.deduced,
        report.feasible
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replace the wall-clock fields' values with `0` so two runs of the
    /// same experiment can be compared for determinism.
    fn mask_timings(s: &str) -> String {
        let mut out = s.to_string();
        for key in [
            "\"other_seconds\":",
            "\"sample_seconds\":",
            "\"estimate_seconds\":",
            "\"samplecf_seconds\":",
        ] {
            let mut from = 0;
            while let Some(i) = out[from..].find(key) {
                let start = from + i + key.len();
                let end = out[start..]
                    .find([',', '}'])
                    .map(|e| start + e)
                    .unwrap_or(out.len());
                out.replace_range(start..end, "0");
                from = start + 1;
            }
        }
        out
    }

    #[test]
    fn advise_json_is_wellformed_and_deterministic() {
        let gen = cadb_datagen::TpchGen::new(0.01);
        let db = gen.build().unwrap();
        let w = gen.workload(&db).unwrap();
        let a = advise_json(&db, &w, 0.01);
        let b = advise_json(&db, &w, 0.01);
        assert_eq!(
            mask_timings(&a),
            mask_timings(&b),
            "JSON output must be deterministic up to wall-clock timings"
        );
        // Cheap structural checks (no JSON parser in-tree): balanced
        // braces, the expected top-level keys, no NaN/Infinity leakage.
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert_eq!(
            a.matches('{').count(),
            a.matches('}').count(),
            "unbalanced braces"
        );
        for key in [
            "\"experiment\":\"advise\"",
            "\"recommendation\":{",
            "\"size_estimation\":{",
            "\"improvement_percent\":",
            "\"estimates\":[",
        ] {
            assert!(a.contains(key), "missing {key} in {a}");
        }
        assert!(!a.contains("NaN") && !a.contains("inf"), "{a}");
    }
}
