//! In-tree shim for the `parking_lot` lock API this workspace uses:
//! [`RwLock`] and [`Mutex`] whose guards are returned directly (no
//! `Result`), backed by `std::sync`. Poisoning is absorbed by taking the
//! inner value — matching parking_lot, which has no poisoning at all.

use std::sync::{self, TryLockError};

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
