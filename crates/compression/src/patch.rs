//! Page *patch sections*: rows appended to an already-encoded page without
//! re-running the page encoder.
//!
//! The live write path (`cadb_exec::store`) must fold freshly committed
//! rows into compressed leaves whose encodings are immutable by design —
//! local dictionaries, prefix anchors and RLE runs are all computed at
//! bulk-build time. A patch section sidesteps the re-encode: the new rows
//! are appended *after* the encoded block in the plain byte codec
//! (`cadb_common::bytes`), terminated by a fixed trailer, and merged back
//! in at decode time. A patched page therefore trades compression for
//! append cost O(rows appended) — exactly the trade a checkpoint undoes
//! when it rebuilds the leaf ([`crate::encode_page`] over the merged rows).
//!
//! Layout: `[encoded page block][patch rows][n_rows u32][payload_len u32]
//! [PATCH_MAGIC u32]` — trailer-framed so it composes with any page
//! encoding without touching the page header.

use cadb_common::bytes::{get_row, get_u32, put_row, put_u32};
use cadb_common::{CadbError, Result, Row};

/// Trailer magic marking a patched page ("CTAP" little-endian).
pub const PATCH_MAGIC: u32 = 0x5041_5443;

/// Trailer bytes after the patch payload: n_rows, payload_len, magic.
pub const PATCH_TRAILER_BYTES: usize = 12;

/// Append rows to an encoded page block as a patch section. If the block
/// already carries a patch, the sections are coalesced — a page holds at
/// most one patch section.
pub fn append_patch(block: &mut Vec<u8>, rows: &[Row]) -> Result<()> {
    if rows.is_empty() {
        return Ok(());
    }
    let (base_len, mut all) = {
        let (base, existing) = split_patch(block)?;
        (base.len(), existing)
    };
    all.extend(rows.iter().cloned());
    block.truncate(base_len);
    let mut payload = Vec::new();
    for r in &all {
        put_row(&mut payload, r);
    }
    let payload_len = payload.len();
    block.extend_from_slice(&payload);
    put_u32(block, all.len() as u32);
    put_u32(block, payload_len as u32);
    put_u32(block, PATCH_MAGIC);
    Ok(())
}

/// `true` when the block ends in a patch trailer.
pub fn has_patch(block: &[u8]) -> bool {
    if block.len() < PATCH_TRAILER_BYTES {
        return false;
    }
    let mut off = block.len() - 4;
    matches!(get_u32(block, &mut off), Ok(m) if m == PATCH_MAGIC)
}

/// Split a possibly-patched block into the encoded base page and the
/// patch rows (empty when the block carries no patch).
pub fn split_patch(block: &[u8]) -> Result<(&[u8], Vec<Row>)> {
    if !has_patch(block) {
        return Ok((block, Vec::new()));
    }
    let mut off = block.len() - PATCH_TRAILER_BYTES;
    let n_rows = get_u32(block, &mut off)? as usize;
    let payload_len = get_u32(block, &mut off)? as usize;
    let trailer_start = block.len() - PATCH_TRAILER_BYTES;
    let payload_start = trailer_start
        .checked_sub(payload_len)
        .ok_or_else(|| CadbError::Storage("patch: payload length exceeds block".into()))?;
    let mut rows = Vec::with_capacity(n_rows);
    let mut p = payload_start;
    for _ in 0..n_rows {
        rows.push(get_row(block, &mut p)?);
    }
    if p != trailer_start {
        return Err(CadbError::Storage(
            "patch: payload length does not match row count".into(),
        ));
    }
    Ok((&block[..payload_start], rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::CompressionKind;
    use crate::page::{decode_page, encode_page, PageContext};
    use cadb_common::{DataType, Value};

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| Row::new(vec![Value::Int(i), Value::Str(format!("s{i}"))]))
            .collect()
    }

    fn ctx(dtypes: &[DataType]) -> PageContext<'_> {
        PageContext {
            dtypes,
            kind: CompressionKind::Row,
            global_dicts: None,
        }
    }

    #[test]
    fn patch_roundtrip_preserves_base_and_rows() {
        let dtypes = [DataType::Int, DataType::Varchar { max_len: 8 }];
        let base = rows(20);
        let page = encode_page(&base, &ctx(&dtypes)).unwrap();
        let mut block = page.bytes.clone();
        let extra = rows(3);
        append_patch(&mut block, &extra).unwrap();
        assert!(has_patch(&block));
        let (base_bytes, patch_rows) = split_patch(&block).unwrap();
        assert_eq!(base_bytes, &page.bytes[..]);
        assert_eq!(patch_rows, extra);
        // The base still decodes exactly.
        assert_eq!(decode_page(base_bytes, &ctx(&dtypes)).unwrap(), base);
    }

    #[test]
    fn patches_coalesce_into_one_section() {
        let dtypes = [DataType::Int, DataType::Varchar { max_len: 8 }];
        let page = encode_page(&rows(10), &ctx(&dtypes)).unwrap();
        let mut block = page.bytes.clone();
        append_patch(&mut block, &rows(2)).unwrap();
        append_patch(&mut block, &rows(3)).unwrap();
        let (base_bytes, patch_rows) = split_patch(&block).unwrap();
        assert_eq!(base_bytes, &page.bytes[..]);
        assert_eq!(patch_rows.len(), 5);
        let (_, tail) = split_patch(base_bytes).unwrap();
        assert!(tail.is_empty(), "base must not retain a patch");
    }

    #[test]
    fn unpatched_block_is_returned_whole() {
        let dtypes = [DataType::Int, DataType::Varchar { max_len: 8 }];
        let page = encode_page(&rows(4), &ctx(&dtypes)).unwrap();
        let (base, patch) = split_patch(&page.bytes).unwrap();
        assert_eq!(base, &page.bytes[..]);
        assert!(patch.is_empty());
    }

    #[test]
    fn empty_patch_is_a_no_op() {
        let dtypes = [DataType::Int, DataType::Varchar { max_len: 8 }];
        let page = encode_page(&rows(4), &ctx(&dtypes)).unwrap();
        let mut block = page.bytes.clone();
        append_patch(&mut block, &[]).unwrap();
        assert_eq!(block, page.bytes);
    }
}
