//! Cross-crate property tests on the core invariants the paper's machinery
//! relies on:
//!
//! * compression is lossless through the full physical-index stack;
//! * ORD-IND methods are order-independent, CF ∈ (0, ~1];
//! * histogram selectivities stay in [0, 1] and sum sensibly;
//! * the seek path agrees with a scan-and-filter oracle;
//! * advisor configurations never exceed the budget.

use cadb::compression::analyze::compressed_index_size;
use cadb::compression::CompressionKind;
use cadb::stats::Histogram;
use cadb::storage::PhysicalIndex;
use cadb_common::{DataType, Row, Value};
use proptest::prelude::*;

/// Strategy: a typed row for the fixed 3-column test schema.
fn arb_row() -> impl Strategy<Value = Row> {
    (-50i64..50, proptest::option::of("[a-z]{0,6}"), any::<i32>()).prop_map(|(a, s, d)| {
        Row::new(vec![
            Value::Int(a),
            s.map(Value::Str).unwrap_or(Value::Null),
            Value::Int(d as i64),
        ])
    })
}

fn dtypes() -> Vec<DataType> {
    vec![
        DataType::Int,
        DataType::Varchar { max_len: 8 },
        DataType::Date,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn physical_index_roundtrips_any_rows(mut rows in proptest::collection::vec(arb_row(), 0..300)) {
        rows.sort();
        for kind in [CompressionKind::None, CompressionKind::Row,
                     CompressionKind::Page, CompressionKind::GlobalDict,
                     CompressionKind::Rle] {
            let ix = PhysicalIndex::build(&rows, &dtypes(), 1, kind).unwrap();
            prop_assert_eq!(ix.scan().unwrap(), rows.clone(), "{}", kind);
        }
    }

    #[test]
    fn ord_ind_size_ignores_order(rows in proptest::collection::vec(arb_row(), 2..200)) {
        let mut sorted = rows.clone();
        sorted.sort();
        let mut reversed = sorted.clone();
        reversed.reverse();
        for kind in [CompressionKind::Row, CompressionKind::GlobalDict] {
            let a = compressed_index_size(&sorted, &dtypes(), kind).unwrap();
            let b = compressed_index_size(&reversed, &dtypes(), kind).unwrap();
            // Page packing boundaries may differ slightly; the byte totals
            // must agree within a page of slack.
            let diff = (a.compressed_bytes as i64 - b.compressed_bytes as i64).abs();
            prop_assert!(diff <= 512, "{kind}: {diff} bytes apart");
        }
    }

    #[test]
    fn cf_is_positive_and_bounded(mut rows in proptest::collection::vec(arb_row(), 1..200)) {
        rows.sort();
        for kind in [CompressionKind::Row, CompressionKind::Page] {
            let m = compressed_index_size(&rows, &dtypes(), kind).unwrap();
            let cf = m.compression_fraction();
            prop_assert!(cf > 0.0, "{kind}: cf={cf}");
            // Fixed per-page overheads (anchors, dictionary headers) can
            // exceed the payload on near-empty pages, so only demand a
            // sane CF once the index has some substance.
            if rows.len() >= 64 {
                prop_assert!(cf < 1.6, "{kind}: cf={cf} over {} rows", rows.len());
            }
            prop_assert_eq!(m.n_rows, rows.len());
        }
    }

    #[test]
    fn seek_matches_filter_oracle(mut rows in proptest::collection::vec(arb_row(), 0..250),
                                  probe in -50i64..50) {
        rows.sort();
        let ix = PhysicalIndex::build(&rows, &dtypes(), 1, CompressionKind::Page).unwrap();
        let got = ix.seek(&[Value::Int(probe)]).unwrap();
        let want: Vec<Row> = rows
            .iter()
            .filter(|r| r.values[0] == Value::Int(probe))
            .cloned()
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn range_scan_matches_filter_oracle(mut rows in proptest::collection::vec(arb_row(), 0..250),
                                        lo in -50i64..50, width in 0i64..40) {
        rows.sort();
        let hi = lo + width;
        let ix = PhysicalIndex::build(&rows, &dtypes(), 1, CompressionKind::Row).unwrap();
        let (got, _) = ix
            .range_scan(Some(&[Value::Int(lo)]), Some(&[Value::Int(hi)]))
            .unwrap();
        let want: Vec<Row> = rows
            .iter()
            .filter(|r| {
                let v = r.values[0].as_i64().unwrap();
                v >= lo && v <= hi
            })
            .cloned()
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn histogram_selectivities_bounded(vals in proptest::collection::vec(-100i64..100, 1..500),
                                       probe in -120i64..120) {
        let values: Vec<Value> = vals.iter().map(|v| Value::Int(*v)).collect();
        let h = Histogram::build(values, DataType::Int, 16).unwrap();
        let eq = h.eq_selectivity(&Value::Int(probe));
        prop_assert!((0.0..=1.0).contains(&eq), "eq={eq}");
        let range = h.range_selectivity(Some(&Value::Int(probe)), Some(&Value::Int(probe + 10)));
        prop_assert!((0.0..=1.0).contains(&range), "range={range}");
        // Equality mass over every distinct value ≈ 1.
        let mut distinct = vals.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let total: f64 = distinct.iter().map(|v| h.eq_selectivity(&Value::Int(*v))).sum();
        prop_assert!((total - 1.0).abs() < 0.35, "total eq mass {total}");
    }
}

// ---------------------------------------------------------------------------
// cadb-core math invariants (§5.1 error model, §5.2/§D.3 graph search).
// ---------------------------------------------------------------------------

/// Strategy: a plausible per-action estimate distribution (mean near 1,
/// modest spread), as produced by SampleCF / ColExt error models.
fn arb_distribution() -> impl Strategy<Value = cadb::core::EstimateDistribution> {
    (0.5f64..1.5, 0.0f64..0.3).prop_map(|(mean, sd)| cadb::core::EstimateDistribution { mean, sd })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn goodman_product_is_order_insensitive(
        parts in proptest::collection::vec(arb_distribution(), 1..7),
        rot in 0usize..7,
    ) {
        use cadb::core::EstimateDistribution;
        let base = EstimateDistribution::product(&parts);
        let mut reversed = parts.clone();
        reversed.reverse();
        let mut rotated = parts.clone();
        rotated.rotate_left(rot % parts.len().max(1));
        for (label, perm) in [("reversed", reversed), ("rotated", rotated)] {
            let p = EstimateDistribution::product(&perm);
            prop_assert!(
                (p.mean - base.mean).abs() <= 1e-9 * base.mean.abs().max(1.0),
                "{label}: mean {} vs {}", p.mean, base.mean
            );
            prop_assert!(
                (p.sd - base.sd).abs() <= 1e-9 * base.sd.abs().max(1.0),
                "{label}: sd {} vs {}", p.sd, base.sd
            );
        }
        // Goodman composition never conjures certainty: the product of a
        // chain is at least as spread as none at all, and multiplying in an
        // exact estimate changes nothing.
        prop_assert!(base.sd >= 0.0);
        let mut with_exact = parts.clone();
        with_exact.push(EstimateDistribution::exact());
        let same = EstimateDistribution::product(&with_exact);
        prop_assert!((same.mean - base.mean).abs() <= 1e-9 * base.mean.abs().max(1.0));
        prop_assert!((same.sd - base.sd).abs() <= 1e-9 * base.sd.abs().max(1.0));
    }

    #[test]
    fn prob_within_is_a_probability_and_monotone_in_e(
        d in arb_distribution(),
        e_lo in 0.01f64..0.5,
        e_step in 0.0f64..1.0,
    ) {
        let p_lo = d.prob_within(e_lo);
        let p_hi = d.prob_within(e_lo + e_step);
        prop_assert!((0.0..=1.0).contains(&p_lo), "p={p_lo}");
        prop_assert!((0.0..=1.0).contains(&p_hi), "p={p_hi}");
        prop_assert!(p_hi >= p_lo - 1e-9, "looser e lowered confidence: {p_lo} -> {p_hi}");
    }
}

/// Shared tiny database for the (exponential) exact-search property — built
/// once, not per case.
fn graph_db() -> &'static cadb::engine::Database {
    use std::sync::OnceLock;
    static DB: OnceLock<cadb::engine::Database> = OnceLock::new();
    DB.get_or_init(|| cadb::datagen::TpchGen::new(0.005).build().unwrap())
}

proptest! {
    // Exact search is exponential by design; keep the case count low and the
    // target sets tiny.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn greedy_between_exact_and_all_sampled(
        raw_targets in proptest::collection::vec(
            (proptest::collection::vec(0usize..6, 1..4), any::<bool>()), 1..5),
        e in 0.4f64..1.2,
        q in 0.7f64..0.9,
    ) {
        use cadb::core::{exact::exact_assign, greedy::{all_sampled, greedy_assign}};
        use cadb::core::{ErrorModel, EstimationGraph};
        use cadb::engine::{IndexSpec, WhatIfOptimizer};

        let db = graph_db();
        let t = db.table_id("lineitem").unwrap();
        let mut targets: Vec<IndexSpec> = Vec::new();
        for (cols, page) in &raw_targets {
            let mut key: Vec<cadb_common::ColumnId> = Vec::new();
            for &c in cols {
                let id = cadb_common::ColumnId(c as u16);
                if !key.contains(&id) {
                    key.push(id);
                }
            }
            let kind = if *page { CompressionKind::Page } else { CompressionKind::Row };
            let spec = IndexSpec::secondary(t, key).with_compression(kind);
            if !targets.contains(&spec) {
                targets.push(spec);
            }
        }

        let opt = WhatIfOptimizer::new(db);
        let mut g_greedy = EstimationGraph::new(&opt, ErrorModel::default(), 0.05, &targets, &[]);
        let greedy_cost = greedy_assign(&mut g_greedy, &opt, e, q);

        let mut g_all = EstimationGraph::new(&opt, ErrorModel::default(), 0.05, &targets, &[]);
        let all_cost = all_sampled(&mut g_all);

        // Greedy never does worse than sampling everything…
        prop_assert!(
            greedy_cost <= all_cost + 1e-9,
            "greedy {greedy_cost} > all-sampled {all_cost}"
        );

        // …and the exact optimum never exceeds greedy (greedy is a feasible
        // assignment the optimum gets to improve on).
        let mut g_exact = EstimationGraph::new(&opt, ErrorModel::default(), 0.05, &targets, &[]);
        let exact = exact_assign(&mut g_exact, &opt, e, q);
        if let Some(exact_cost) = exact.best_cost {
            prop_assert!(!exact.truncated);
            prop_assert!(
                exact_cost <= greedy_cost + 1e-9,
                "exact {exact_cost} > greedy {greedy_cost}"
            );
            prop_assert!(g_exact.feasible(e, q));
        }
    }
}

proptest! {
    // Advisor property: expensive, so very few cases.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn advisor_respects_any_budget(frac in 0.02f64..1.0) {
        let gen = cadb::datagen::TpchGen::new(0.005);
        let db = gen.build().unwrap();
        let w = gen.workload(&db).unwrap();
        let budget = frac * db.base_data_bytes() as f64;
        let rec = cadb::core::Advisor::new(&db, cadb::core::AdvisorOptions::dtac(budget))
            .recommend(&w)
            .unwrap();
        prop_assert!(rec.total_bytes() <= budget + 1.0);
        prop_assert!(rec.final_cost <= rec.initial_cost + 1e-9);
    }
}
