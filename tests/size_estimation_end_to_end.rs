//! Integration tests for the size-estimation pipeline against ground truth
//! on the TPC-H-like dataset.

use cadb::compression::CompressionKind;
use cadb::core::{ErrorModel, EstimationPlanner, PlannerOptions};
use cadb::engine::{IndexSpec, WhatIfOptimizer};
use cadb::sampling::{index_row_stream, SampleManager};
use cadb::storage::PhysicalIndex;

/// Ground truth: actually build the physical index and measure it,
/// internal separator pages and all — the same artifact the estimates
/// are priced against since the estimator sweep.
fn built_bytes(db: &cadb::engine::Database, spec: &IndexSpec) -> f64 {
    let source = db.table(spec.table).rows();
    let (rows, dtypes, n_key) = index_row_stream(db, spec, source).unwrap();
    let ix = PhysicalIndex::build(&rows, &dtypes, n_key, spec.compression).unwrap();
    ix.size_bytes() as f64
}

fn targets(db: &cadb::engine::Database) -> Vec<IndexSpec> {
    let t = db.table_id("lineitem").unwrap();
    let col = |n: &str| db.schema(t).column_id(n).unwrap();
    let mut out = Vec::new();
    for kind in [CompressionKind::Row, CompressionKind::Page] {
        for key in [
            vec![col("shipdate")],
            vec![col("suppkey")],
            vec![col("returnflag")],
            vec![col("shipdate"), col("suppkey")],
            vec![col("suppkey"), col("shipdate")],
            vec![col("returnflag"), col("shipmode"), col("quantity")],
        ] {
            out.push(IndexSpec::secondary(t, key).with_compression(kind));
        }
    }
    out
}

#[test]
fn estimates_within_requested_accuracy_most_of_the_time() {
    let db = cadb::datagen::TpchGen::new(0.1).build().unwrap();
    let opt = WhatIfOptimizer::new(&db);
    let manager = SampleManager::new(&db, 99);
    let e = 0.5;
    let planner = EstimationPlanner::new(
        &opt,
        &manager,
        ErrorModel::default(),
        PlannerOptions {
            e,
            q: 0.9,
            ..Default::default()
        },
    );
    let targets = targets(&db);
    let report = planner.estimate_sizes(&targets, &[]).unwrap();
    assert!(report.feasible);
    let mut within = 0usize;
    for spec in &targets {
        let est = report.estimates[spec];
        let truth_bytes = built_bytes(&db, spec);
        let ratio = est.bytes / truth_bytes;
        if ratio <= 1.0 + e && ratio >= 1.0 / (1.0 + e) {
            within += 1;
        }
    }
    // q = 90%: allow one straggler in twelve.
    assert!(
        within + 1 >= targets.len(),
        "only {within}/{} within e={e}",
        targets.len()
    );
}

#[test]
fn existing_indexes_make_estimation_cheaper() {
    let db = cadb::datagen::TpchGen::new(0.05).build().unwrap();
    let opt = WhatIfOptimizer::new(&db);
    let manager = SampleManager::new(&db, 5);
    let t = db.table_id("lineitem").unwrap();
    let col = |n: &str| db.schema(t).column_id(n).unwrap();
    let target = IndexSpec::secondary(t, vec![col("suppkey"), col("shipdate")])
        .with_compression(CompressionKind::Row);
    let existing = IndexSpec::secondary(t, vec![col("shipdate"), col("suppkey")])
        .with_compression(CompressionKind::Row);

    let planner = EstimationPlanner::new(
        &opt,
        &manager,
        ErrorModel::default(),
        PlannerOptions::default(),
    );
    let cold = planner
        .estimate_sizes(std::slice::from_ref(&target), &[])
        .unwrap();
    let warm = planner
        .estimate_sizes(
            std::slice::from_ref(&target),
            std::slice::from_ref(&existing),
        )
        .unwrap();
    // With the permutation already materialized, ColSet deduces for free.
    assert!(warm.planned_cost < cold.planned_cost);
    assert_eq!(warm.deduced, 1);
    assert_eq!(warm.sampled, 0);
    // And the deduced estimate is excellent (existing sizes are exact).
    let truth = built_bytes(&db, &target);
    let err = (warm.estimates[&target].bytes - truth).abs() / truth;
    assert!(err < 0.15, "err {err}");
}

#[test]
fn mv_index_size_uses_ae_rows() {
    let db = cadb::datagen::TpchGen::new(0.1).build().unwrap();
    let t = db.table_id("lineitem").unwrap();
    let col = |n: &str| db.schema(t).column_id(n).unwrap();
    let mv = cadb::engine::MvSpec {
        root: t,
        joins: vec![],
        group_by: vec![(t, col("shipdate"))],
        agg_columns: vec![(t, col("extendedprice"))],
    };
    let spec = IndexSpec {
        table: t,
        key_cols: vec![cadb::common::ColumnId(0)],
        include_cols: vec![],
        clustered: false,
        compression: CompressionKind::Row,
        partial_filter: None,
        mv: Some(mv.clone()),
    };
    let opt = WhatIfOptimizer::new(&db);
    let manager = SampleManager::new(&db, 17);
    let planner = EstimationPlanner::new(
        &opt,
        &manager,
        ErrorModel::default(),
        PlannerOptions::default(),
    );
    let report = planner
        .estimate_sizes(std::slice::from_ref(&spec), &[])
        .unwrap();
    let est = report.estimates[&spec];
    let true_groups = cadb::engine::cardinality::mv_true_rows(&db, &mv) as f64;
    let err = (est.rows - true_groups).abs() / true_groups;
    assert!(
        err < 0.35,
        "MV rows est {} vs truth {true_groups}",
        est.rows
    );
}
