//! Deterministic round-trip coverage for every codec in this crate:
//! encode → decode must be the identity, and the measured sizes must be
//! sane (compressible fixtures actually shrink, incompressible ones never
//! blow up past their documented overhead).
//!
//! These complement the in-module proptests: fixed fixtures mean a failure
//! here points at a codec regression, not at an unlucky generated input.

use cadb_common::{DataType, Row, Value};
use cadb_compression::analyze::{build_dictionaries, compressed_index_size};
use cadb_compression::bytesrepr::value_bytes;
use cadb_compression::global_dict::{self, GlobalDictionary};
use cadb_compression::page::{decode_page, encode_page, PageContext};
use cadb_compression::{local_dict, null_suppress, prefix, rle, CompressionKind};

/// Deterministic mixed-shape byte values: runs, shared prefixes, empties.
fn fixture_values() -> Vec<Vec<u8>> {
    let mut vals = Vec::new();
    for i in 0..40u8 {
        // Runs of identical values (RLE-friendly).
        vals.push(vec![7, 7, 7, i / 10]);
        // A shared long prefix with a varying tail (prefix-friendly).
        let mut v = b"prefix-2011-".to_vec();
        v.push(b'a' + i % 5);
        vals.push(v);
        // A tiny alphabet of short values (dictionary-friendly).
        vals.push(vec![b'x' + i % 3]);
        if i % 13 == 0 {
            vals.push(Vec::new());
        }
    }
    vals
}

fn plain_bytes(vals: &[Vec<u8>]) -> usize {
    vals.iter().map(Vec::len).sum()
}

#[test]
fn rle_round_trip_and_size() {
    let vals = fixture_values();
    let block = rle::encode(&vals);
    assert_eq!(rle::decode(&block).unwrap(), vals);

    // A single long run must collapse to far below its plain payload.
    let run: Vec<Vec<u8>> = vec![b"constant".to_vec(); 500];
    let run_block = rle::encode(&run);
    assert_eq!(rle::decode(&run_block).unwrap(), run);
    assert!(
        run_block.len() * 10 < plain_bytes(&run),
        "500-value run encoded to {} bytes vs {} plain",
        run_block.len(),
        plain_bytes(&run)
    );
}

#[test]
fn prefix_round_trip_and_size() {
    let vals = fixture_values();
    let block = prefix::encode(&vals);
    assert_eq!(prefix::decode(&block).unwrap(), vals);

    // All values sharing a 12-byte prefix: the encoded block must beat the
    // plain payload even after anchor + per-value headers.
    let shared: Vec<Vec<u8>> = (0..100u8)
        .map(|i| {
            let mut v = b"2011-07-SAME".to_vec();
            v.push(i);
            v
        })
        .collect();
    let shared_block = prefix::encode(&shared);
    assert_eq!(prefix::decode(&shared_block).unwrap(), shared);
    assert!(
        shared_block.len() < plain_bytes(&shared),
        "shared-prefix block {} >= plain {}",
        shared_block.len(),
        plain_bytes(&shared)
    );
}

#[test]
fn null_suppress_round_trip_and_size() {
    let cases = [
        (Value::Int(0), DataType::Int),
        (Value::Int(1), DataType::Int),
        (Value::Int(-1), DataType::Int),
        (Value::Int(255), DataType::Int),
        (Value::Int(i64::MAX), DataType::Int),
        (Value::Int(i64::MIN), DataType::Int),
        (Value::Int(733_000), DataType::Date),
        (Value::Str("".into()), DataType::Char { len: 10 }),
        (Value::Str("abc".into()), DataType::Char { len: 10 }),
    ];
    for (v, t) in &cases {
        let canon = value_bytes(v, t);
        let s = null_suppress::suppress(&canon, t);
        assert_eq!(null_suppress::expand(&s, t), canon, "{v:?} ({t:?})");
        assert!(
            s.len() <= canon.len(),
            "{v:?}: suppressed {} > canonical {}",
            s.len(),
            canon.len()
        );
    }
    // Small magnitudes must actually shrink from the 8-byte canonical form.
    let canon = value_bytes(&Value::Int(3), &DataType::Int);
    assert!(null_suppress::suppress(&canon, &DataType::Int).len() < canon.len());
}

#[test]
fn local_dict_round_trip_and_size() {
    let vals = fixture_values();
    let block = local_dict::encode(&vals);
    assert_eq!(local_dict::decode(&block).unwrap(), vals);

    // 300 occurrences of 3 distinct 16-byte values: the dictionary pays for
    // itself many times over.
    let dup: Vec<Vec<u8>> = (0..300usize)
        .map(|i| {
            let mut v = vec![b'A' + (i % 3) as u8; 16];
            v[15] = b'0' + (i % 3) as u8;
            v
        })
        .collect();
    let dup_block = local_dict::encode(&dup);
    assert_eq!(local_dict::decode(&dup_block).unwrap(), dup);
    assert!(
        dup_block.len() * 4 < plain_bytes(&dup),
        "dictionary block {} vs plain {}",
        dup_block.len(),
        plain_bytes(&dup)
    );
}

#[test]
fn global_dict_round_trip_and_size() {
    let vals = fixture_values();
    let dict = GlobalDictionary::build(vals.iter().map(|v| v.as_slice()));
    let block = global_dict::encode(&vals, &dict).unwrap();
    assert_eq!(global_dict::decode(&block, &dict).unwrap(), vals);

    // With few distinct long values, per-value ids beat the plain payload
    // (the dictionary itself is amortized across the whole index).
    let dup: Vec<Vec<u8>> = (0..400usize)
        .map(|i| format!("nation-name-number-{}", i % 8).into_bytes())
        .collect();
    let dup_dict = GlobalDictionary::build(dup.iter().map(|v| v.as_slice()));
    let dup_block = global_dict::encode(&dup, &dup_dict).unwrap();
    assert_eq!(global_dict::decode(&dup_block, &dup_dict).unwrap(), dup);
    assert!(
        dup_block.len() * 4 < plain_bytes(&dup),
        "id stream {} vs plain {}",
        dup_block.len(),
        plain_bytes(&dup)
    );
}

/// A deterministic, compressible page of (int, varchar, date) rows with a
/// sprinkling of NULLs — the same shape the integration suite uses.
fn fixture_rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::new(vec![
                Value::Int((i % 50) as i64),
                if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::Str(format!("cat{:02}", i % 7))
                },
                Value::Int(733_000 + (i % 30) as i64),
            ])
        })
        .collect()
}

fn fixture_dtypes() -> Vec<DataType> {
    vec![
        DataType::Int,
        DataType::Varchar { max_len: 8 },
        DataType::Date,
    ]
}

#[test]
fn page_round_trip_every_kind() {
    let rows = fixture_rows(300);
    let dtypes = fixture_dtypes();
    let dicts = build_dictionaries(&rows, &dtypes);
    for kind in [
        CompressionKind::None,
        CompressionKind::Row,
        CompressionKind::Page,
        CompressionKind::GlobalDict,
        CompressionKind::Rle,
    ] {
        let ctx = PageContext {
            dtypes: &dtypes,
            kind,
            global_dicts: (kind == CompressionKind::GlobalDict).then_some(dicts.as_slice()),
        };
        let encoded = encode_page(&rows, &ctx).unwrap();
        assert_eq!(decode_page(&encoded.bytes, &ctx).unwrap(), rows, "{kind}");
        assert_eq!(encoded.n_rows, rows.len(), "{kind}");
        assert!(encoded.uncompressed_bytes > 0, "{kind}");
        // Every real method must shrink this redundant page.
        if kind.is_compressed() {
            assert!(
                encoded.compression_fraction() < 1.0,
                "{kind}: cf={}",
                encoded.compression_fraction()
            );
        }
    }
}

#[test]
fn page_round_trips_empty_and_single_row() {
    let dtypes = fixture_dtypes();
    for rows in [Vec::new(), fixture_rows(1)] {
        for kind in [CompressionKind::None, CompressionKind::Page] {
            let ctx = PageContext {
                dtypes: &dtypes,
                kind,
                global_dicts: None,
            };
            let encoded = encode_page(&rows, &ctx).unwrap();
            assert_eq!(decode_page(&encoded.bytes, &ctx).unwrap(), rows, "{kind}");
        }
    }
}

#[test]
fn measured_index_size_is_consistent_across_kinds() {
    let rows = fixture_rows(2000);
    let dtypes = fixture_dtypes();
    let mut seen = Vec::new();
    for kind in [
        CompressionKind::None,
        CompressionKind::Row,
        CompressionKind::Page,
        CompressionKind::GlobalDict,
        CompressionKind::Rle,
    ] {
        let m = compressed_index_size(&rows, &dtypes, kind).unwrap();
        assert_eq!(m.n_rows, rows.len(), "{kind}");
        assert!(m.compressed_bytes > 0, "{kind}");
        assert!(m.compression_fraction() > 0.0, "{kind}");
        if kind.is_compressed() {
            assert!(
                m.compression_fraction() < 1.0,
                "{kind}: cf={} on redundant fixture",
                m.compression_fraction()
            );
        }
        seen.push((kind, m.compressed_bytes));
    }
    // PAGE (prefix + local dict on top of ROW) must beat plain ROW
    // suppression on this repetitive fixture.
    let bytes_of = |k: CompressionKind| seen.iter().find(|(kk, _)| *kk == k).unwrap().1;
    assert!(bytes_of(CompressionKind::Page) < bytes_of(CompressionKind::Row));
    assert!(bytes_of(CompressionKind::Row) < bytes_of(CompressionKind::None));
}
