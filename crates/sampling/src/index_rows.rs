//! Building the row stream of an index from a row source.
//!
//! Shared by SampleCF (which feeds it sample rows) and by ground-truth
//! measurement (which feeds it the full table): project the stored columns,
//! append the row locator for secondary indexes, sort by the key prefix.

use cadb_common::{CadbError, ColumnId, DataType, Result, Row, Value};
use cadb_compression::analyze::compressed_index_size;
use cadb_engine::exec::materialize_mv;
use cadb_engine::{Database, IndexSpec};

/// The typed, sorted row stream an index build would consume, produced from
/// an arbitrary subset of the table's rows (`source`). Returns
/// `(rows, dtypes, n_key_cols)`.
pub fn index_row_stream(
    db: &Database,
    spec: &IndexSpec,
    source: &[Row],
) -> Result<(Vec<Row>, Vec<DataType>, usize)> {
    index_row_stream_spread(db, spec, source, source.len())
}

/// Like [`index_row_stream`], but spreads secondary-index row locators
/// evenly over a `domain`-row base table instead of using positions into
/// `source` directly.
///
/// SampleCF builds on a fraction-`f` sample, and under ROW-family null
/// suppression a locator's stored width depends on its magnitude:
/// sample-local ordinals (`0..n·f`) suppress to fewer bytes than the full
/// build's locators (`0..n`), which made sampled fractions systematically
/// optimistic — worst on narrow indexes, where the locator is a large share
/// of the stored row. Scaling ordinals by `domain / source.len()` gives the
/// sample's locator column the full build's byte-width distribution while
/// keeping locators distinct and ordered. `domain ≤ source.len()` (the full
/// build) degenerates to the identity.
pub fn index_row_stream_spread(
    db: &Database,
    spec: &IndexSpec,
    source: &[Row],
    domain: usize,
) -> Result<(Vec<Row>, Vec<DataType>, usize)> {
    if spec.mv.is_some() {
        return Err(CadbError::InvalidArgument(
            "MV index rows come from the MV sample, not the base table".into(),
        ));
    }
    let table_dtypes = db.dtypes(spec.table);
    let stored: Vec<ColumnId> = if spec.clustered {
        (0..table_dtypes.len() as u16).map(ColumnId).collect()
    } else {
        spec.stored_columns()
    };
    let mut dtypes: Vec<DataType> = stored.iter().map(|c| table_dtypes[c.raw()]).collect();

    let filtered: Vec<(usize, &Row)> = source
        .iter()
        .enumerate()
        .filter(|(_, r)| {
            spec.partial_filter
                .as_ref()
                .map(|f| f.matches(r))
                .unwrap_or(true)
        })
        .collect();

    let stride = if source.is_empty() {
        1
    } else {
        (domain / source.len()).max(1)
    };
    let mut rows: Vec<Row> = filtered
        .iter()
        .map(|(ordinal, r)| {
            let mut vals: Vec<Value> = stored.iter().map(|c| r.values[c.raw()].clone()).collect();
            if !spec.clustered {
                vals.push(Value::Int((*ordinal * stride) as i64)); // row locator
            }
            Row::new(vals)
        })
        .collect();
    if !spec.clustered {
        dtypes.push(DataType::Int);
    }

    let n_key = spec.key_cols.len().min(stored.len());
    let key: Vec<ColumnId> = (0..n_key as u16).map(ColumnId).collect();
    rows.sort_by(|a, b| a.key_cmp(b, &key).then_with(|| a.cmp(b)));
    Ok((rows, dtypes, n_key))
}

/// The stored-column permutation of an index over an MV: the spec's key
/// columns first, then the remaining MV-layout columns in layout order.
/// Entry `i` is the MV-layout ordinal (group-by columns, then SUM columns,
/// then COUNT(*)) stored at position `i` of the index. Shared by the index
/// build ([`mv_index_row_stream`]) and the compressed executor's MV scan,
/// which must agree on the layout to read the right columns back.
pub fn mv_layout_order(spec: &IndexSpec, n_stored: usize) -> Vec<usize> {
    let mut order: Vec<usize> = spec.key_cols.iter().map(|c| c.raw()).collect();
    for i in 0..n_stored {
        if !order.contains(&i) {
            order.push(i);
        }
    }
    order
}

/// The row stream of an index over an MV, from materialized MV rows.
/// MV stored layout: group-by columns, SUM columns, COUNT(*); the spec's
/// key columns are ordinals into that layout.
pub fn mv_index_row_stream(
    db: &Database,
    spec: &IndexSpec,
    mv_rows: &[Row],
) -> Result<(Vec<Row>, Vec<DataType>, usize)> {
    let mv = spec
        .mv
        .as_ref()
        .ok_or_else(|| CadbError::InvalidArgument("not an MV index".into()))?;
    let mut dtypes: Vec<DataType> = mv
        .group_by
        .iter()
        .map(|(t, c)| db.dtypes(*t)[c.raw()])
        .collect();
    dtypes.extend(std::iter::repeat_n(DataType::Int, mv.agg_columns.len() + 1));

    // Reorder so key columns come first.
    let n_stored = dtypes.len();
    let order = mv_layout_order(spec, n_stored);
    for &i in &order {
        if i >= n_stored {
            return Err(CadbError::InvalidArgument(format!(
                "MV index key column {i} out of range ({n_stored} stored)"
            )));
        }
    }
    let dtypes_perm: Vec<DataType> = order.iter().map(|&i| dtypes[i]).collect();
    let mut rows: Vec<Row> = mv_rows
        .iter()
        .map(|r| Row::new(order.iter().map(|&i| r.values[i].clone()).collect()))
        .collect();
    let n_key = spec.key_cols.len();
    let key: Vec<ColumnId> = (0..n_key as u16).map(ColumnId).collect();
    rows.sort_by(|a, b| a.key_cmp(b, &key).then_with(|| a.cmp(b)));
    Ok((rows, dtypes_perm, n_key))
}

/// Ground truth: the exact compression fraction of an index, measured by
/// building and compressing it over the **full** data. Expensive — this is
/// what SampleCF and the deductions avoid.
pub fn true_compression_fraction(db: &Database, spec: &IndexSpec) -> Result<f64> {
    let (rows, dtypes) = if let Some(mv) = &spec.mv {
        let mv_rows = materialize_mv(db, mv)?;
        let (r, d, _) = mv_index_row_stream(db, spec, &mv_rows)?;
        (r, d)
    } else {
        let source = db.table(spec.table).rows();
        let (r, d, _) = index_row_stream(db, spec, source)?;
        (r, d)
    };
    let m = compressed_index_size(&rows, &dtypes, spec.compression)?;
    Ok(m.compression_fraction())
}

/// Measured full size in bytes of an index (compressed as specified).
pub fn true_index_bytes(db: &Database, spec: &IndexSpec) -> Result<usize> {
    let (rows, dtypes) = if let Some(mv) = &spec.mv {
        let mv_rows = materialize_mv(db, mv)?;
        let (r, d, _) = mv_index_row_stream(db, spec, &mv_rows)?;
        (r, d)
    } else {
        let source = db.table(spec.table).rows();
        let (r, d, _) = index_row_stream(db, spec, source)?;
        (r, d)
    };
    let m = compressed_index_size(&rows, &dtypes, spec.compression)?;
    Ok(m.compressed_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cadb_common::{ColumnDef, TableId, TableSchema};
    use cadb_compression::CompressionKind;
    use cadb_engine::Predicate;

    fn db() -> Database {
        let mut db = Database::new();
        let t = db
            .create_table(
                TableSchema::new(
                    "t",
                    vec![
                        ColumnDef::new("a", DataType::Int),
                        ColumnDef::new("b", DataType::Char { len: 6 }),
                        ColumnDef::new("c", DataType::Int),
                    ],
                    vec![ColumnId(0)],
                )
                .unwrap(),
            )
            .unwrap();
        let rows: Vec<Row> = (0..3000)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i % 40),
                    Value::Str(format!("s{}", i % 6)),
                    Value::Int(i),
                ])
            })
            .collect();
        db.insert_rows(t, rows).unwrap();
        db
    }

    #[test]
    fn secondary_index_gets_locator_and_sort() {
        let db = db();
        let spec = IndexSpec::secondary(TableId(0), vec![ColumnId(1), ColumnId(0)]);
        let (rows, dtypes, n_key) =
            index_row_stream(&db, &spec, db.table(TableId(0)).rows()).unwrap();
        assert_eq!(rows.len(), 3000);
        assert_eq!(dtypes.len(), 3); // b, a, locator
        assert_eq!(n_key, 2);
        // Sorted by (b, a).
        for w in rows.windows(2) {
            assert!(
                w[0].key_cmp(&w[1], &[ColumnId(0), ColumnId(1)]) != std::cmp::Ordering::Greater
            );
        }
    }

    #[test]
    fn clustered_stores_all_columns_no_locator() {
        let db = db();
        let spec = IndexSpec::clustered(TableId(0), vec![ColumnId(0)]);
        let (rows, dtypes, _) = index_row_stream(&db, &spec, db.table(TableId(0)).rows()).unwrap();
        assert_eq!(dtypes.len(), 3);
        assert_eq!(rows.len(), 3000);
    }

    #[test]
    fn partial_filter_applies() {
        let db = db();
        let mut spec = IndexSpec::secondary(TableId(0), vec![ColumnId(0)]);
        spec.partial_filter = Some(Predicate::eq(
            TableId(0),
            ColumnId(1),
            Value::Str("s3".into()),
        ));
        let (rows, ..) = index_row_stream(&db, &spec, db.table(TableId(0)).rows()).unwrap();
        assert_eq!(rows.len(), 500);
    }

    #[test]
    fn true_cf_less_than_one_for_compressible() {
        let db = db();
        let spec = IndexSpec::secondary(TableId(0), vec![ColumnId(0), ColumnId(1)])
            .with_compression(CompressionKind::Page);
        let cf = true_compression_fraction(&db, &spec).unwrap();
        assert!(cf > 0.0 && cf < 0.9, "cf={cf}");
        let bytes = true_index_bytes(&db, &spec).unwrap();
        assert!(bytes > 0);
    }

    #[test]
    fn colset_property_holds_on_ground_truth() {
        // §4.2: ORD-IND compressed sizes are equal for the same column set.
        let db = db();
        let ab = IndexSpec::secondary(TableId(0), vec![ColumnId(0), ColumnId(1)])
            .with_compression(CompressionKind::Row);
        let ba = IndexSpec::secondary(TableId(0), vec![ColumnId(1), ColumnId(0)])
            .with_compression(CompressionKind::Row);
        let sa = true_index_bytes(&db, &ab).unwrap() as f64;
        let sb = true_index_bytes(&db, &ba).unwrap() as f64;
        assert!((sa - sb).abs() / sa < 0.02, "{sa} vs {sb}");
    }
}
