//! In-tree shim providing the subset of the `proptest` API this workspace
//! uses: the [`strategy::Strategy`] trait with `prop_map`, range / tuple /
//! `&str`-regex strategies, [`collection::vec`], [`option::of`],
//! [`arbitrary::any`], `ProptestConfig`, and the `proptest!` /
//! `prop_assert*!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **Greedy binary-search shrinking over value trees.** A failing case
//!   is minimized before it is reported: each strategy generates a
//!   [`strategy::ValueTree`] whose children are strictly-simpler candidate
//!   trees (range start, midpoint, one step — i.e. a binary search toward
//!   the simplest value), the runner adopts the first candidate that still
//!   fails and descends into its children, and the final panic carries the
//!   locally-minimal input. Because shrinking walks trees rather than
//!   inverting output values, `prop_map`ped strategies shrink through
//!   their pre-image, and string patterns shrink piece-by-piece with every
//!   candidate re-validated against the pattern's language.
//! * **Deterministic seeding.** Every test derives its RNG seed from the
//!   test's name, so a given binary fails (or passes) identically on every
//!   run — which tier-1 reproducibility wants anyway.
//! * **`&str` strategies** support the character-class subset of regex the
//!   workspace uses (`[a-z ]{0,12}`-style, plus literals and `* + ?`).

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Top-level test macro. Matches real proptest's surface grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(x in 0i64..10, mut v in collection::vec(any::<u8>(), 0..5)) { ... }
/// }
/// ```
///
/// Attributes on each fn (including `#[test]` itself) are re-emitted
/// verbatim, so the expansion runs under the standard test harness.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategies = ( $( $strat, )+ );
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            // One closure call = one case body run. The immediately-invoked
            // inner closure makes `prop_assume!`'s `return` skip the whole
            // case even from inside a loop in the body; the outer closure
            // is what the runner replays while shrinking a failure.
            #[allow(clippy::redundant_closure_call)]
            $crate::test_runner::run_cases(
                &__strategies,
                &mut __rng,
                __config.cases,
                |( $( $pat, )+ )| {
                    (|| {
                        $body
                    })();
                },
            );
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// A failed property is a failed assert; the runner catches it, shrinks
/// the inputs, and re-raises with the minimal case.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Each case body runs inside a closure, so this `return` abandons the
/// whole case — matching real proptest's rejection semantics even when
/// written inside a loop in the test body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}
