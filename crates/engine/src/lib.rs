//! # cadb-engine
//!
//! The optimizer substrate: catalog + statistics, logical statements lowered
//! from SQL, cardinality estimation, the **compression-aware cost model**
//! (paper Appendix A), hypothetical configurations and the *what-if* API
//! that physical design tools drive (§3), plus a small executor used to
//! build real physical structures and sanity-check the cost model's trends.

#![warn(missing_docs)]

pub mod access_path;
pub mod cardinality;
pub mod catalog;
pub mod config;
pub mod cost;
pub mod exec;
pub mod lower;
pub mod predicate;
pub mod stmt;
pub mod whatif;

pub use access_path::{extract_key_range, KeyRange};
pub use catalog::Database;
pub use config::{Configuration, IndexSpec, MvSpec, Parallelism, PhysicalStructure, SizeEstimate};
pub use cost::CostModel;
pub use predicate::{PredOp, Predicate};
pub use stmt::{BulkDelete, BulkInsert, BulkUpdate, JoinEdge, Query, Statement, Workload};
pub use whatif::WhatIfOptimizer;
