//! Figure 9 / Table 2 (SampleCF error calibration) and Figure 10 / Table 3
//! (deduction error calibration) — Appendix C.
//!
//! Measures `estimate/truth` for SampleCF over many indexes and sampling
//! fractions (per dataset and skew), reports bias and standard deviation,
//! and least-square-fits the `c · ln f` coefficients. For deductions, the
//! same is done against the number of extrapolated indexes `a`.

use crate::experiments::lineitem_index_specs;
use crate::report::Table;
use cadb_common::ColumnId;
use cadb_compression::CompressionKind;
use cadb_core::deduction::{deduce_size, KnownSize};
use cadb_core::ErrorModel;
use cadb_engine::{Database, IndexSpec, WhatIfOptimizer};
use cadb_sampling::{sample_cf, true_compression_fraction, SampleManager};

/// Statistics of relative estimates over a set of indexes.
#[derive(Debug, Clone, Copy)]
pub struct ErrorStats {
    /// Mean of `estimate/truth − 1`.
    pub bias: f64,
    /// Standard deviation of `estimate/truth`.
    pub stddev: f64,
    /// Samples.
    pub n: usize,
}

fn stats_of(ratios: &[f64]) -> ErrorStats {
    let n = ratios.len();
    if n == 0 {
        return ErrorStats {
            bias: 0.0,
            stddev: 0.0,
            n: 0,
        };
    }
    let mean = ratios.iter().sum::<f64>() / n as f64;
    let var = ratios.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n as f64;
    ErrorStats {
        bias: mean - 1.0,
        stddev: var.sqrt(),
        n,
    }
}

/// Ground-truth CF per spec, computed once and reused across fractions and
/// seeds (building every index is the expensive part of this experiment).
pub fn ground_truths(db: &Database, specs: &[IndexSpec]) -> Vec<Option<f64>> {
    specs
        .iter()
        .map(|spec| {
            true_compression_fraction(db, spec)
                .ok()
                .filter(|t| *t > 0.0)
        })
        .collect()
}

/// SampleCF `estimate/truth` ratios for a set of specs at fraction `f`.
pub fn samplecf_ratios(db: &Database, specs: &[IndexSpec], f: f64, seed: u64) -> Vec<f64> {
    let truths = ground_truths(db, specs);
    samplecf_ratios_with_truths(db, specs, &truths, f, seed)
}

/// Like [`samplecf_ratios`] but with precomputed ground truths.
pub fn samplecf_ratios_with_truths(
    db: &Database,
    specs: &[IndexSpec],
    truths: &[Option<f64>],
    f: f64,
    seed: u64,
) -> Vec<f64> {
    let manager = SampleManager::new(db, seed);
    specs
        .iter()
        .zip(truths)
        .filter_map(|(spec, truth)| {
            let truth = (*truth)?;
            let est = sample_cf(&manager, spec, f).ok()?;
            Some(est.cf / truth)
        })
        .collect()
}

/// One dataset row of the Figure 9 experiment: per fraction, per method
/// family, bias and stddev.
pub fn figure9_for_db(db: &Database, fractions: &[f64], seeds: &[u64]) -> Table {
    let ns_specs = lineitem_index_specs(db, &[CompressionKind::Row], 2);
    let ld_specs = lineitem_index_specs(db, &[CompressionKind::Page], 2);
    let ns_truths = ground_truths(db, &ns_specs);
    let ld_truths = ground_truths(db, &ld_specs);
    let mut t = Table::new(
        "Figure 9: SampleCF error bias and stddev vs sampling fraction f",
        &["f", "NS-bias", "NS-stddev", "LD-bias", "LD-stddev"],
    );
    let mut fit_points: Vec<(String, Vec<(f64, f64)>)> = vec![
        ("NS-stddev".into(), Vec::new()),
        ("LD-bias".into(), Vec::new()),
        ("LD-stddev".into(), Vec::new()),
    ];
    for &f in fractions {
        let mut ns_all = Vec::new();
        let mut ld_all = Vec::new();
        for &seed in seeds {
            ns_all.extend(samplecf_ratios_with_truths(
                db, &ns_specs, &ns_truths, f, seed,
            ));
            ld_all.extend(samplecf_ratios_with_truths(
                db, &ld_specs, &ld_truths, f, seed,
            ));
        }
        let ns = stats_of(&ns_all);
        let ld = stats_of(&ld_all);
        fit_points[0].1.push((f, ns.stddev));
        fit_points[1].1.push((f, ld.bias));
        fit_points[2].1.push((f, ld.stddev));
        t.row(vec![
            format!("{:.1}%", f * 100.0),
            format!("{:+.4}", ns.bias),
            format!("{:.4}", ns.stddev),
            format!("{:+.4}", ld.bias),
            format!("{:.4}", ld.stddev),
        ]);
    }
    // Table 2: least-square fits.
    t.row(vec!["".into(); 5]);
    for (name, pts) in fit_points {
        let c = ErrorModel::fit_ln_coefficient(&pts);
        t.row(vec![
            "fit".into(),
            name,
            format!("{c:+.4} ln(f)"),
            "".into(),
            "".into(),
        ]);
    }
    t
}

/// Figure 10 / Table 3: deduction error vs number of extrapolated indexes.
///
/// For each target of width `a ∈ {2, 3, 4}`, deduce its size from its `a`
/// singleton children (with ground-truth child sizes, isolating the
/// deduction's own error, as in the paper's analysis).
pub fn figure10_for_db(db: &Database) -> Table {
    let opt = WhatIfOptimizer::new(db);
    let t_li = db.table_id("lineitem").expect("TPC-H database");
    let cols: Vec<ColumnId> = [0u16, 1, 2, 4, 5, 6, 8, 10]
        .iter()
        .map(|c| ColumnId(*c))
        .collect();
    let mut table = Table::new(
        "Figure 10: deduction (ColExt) error vs a = #extrapolated indexes",
        &["a", "NS-bias", "NS-stddev", "LD-bias", "LD-stddev"],
    );
    let mut fits: Vec<(String, Vec<(f64, f64)>)> = vec![
        ("NS-bias".into(), Vec::new()),
        ("LD-bias".into(), Vec::new()),
        ("LD-stddev".into(), Vec::new()),
    ];
    for a in 2..=4usize {
        let mut per_kind: Vec<(CompressionKind, Vec<f64>)> = vec![
            (CompressionKind::Row, Vec::new()),
            (CompressionKind::Page, Vec::new()),
        ];
        for start in 0..cols.len() {
            let key: Vec<ColumnId> = (0..a).map(|i| cols[(start + i) % cols.len()]).collect();
            for (kind, ratios) in per_kind.iter_mut() {
                let target = IndexSpec::secondary(t_li, key.clone()).with_compression(*kind);
                let children: Vec<KnownSize> = key
                    .iter()
                    .map(|c| {
                        let spec = IndexSpec::secondary(t_li, vec![*c]).with_compression(*kind);
                        let cf = true_compression_fraction(db, &spec).unwrap_or(1.0);
                        let unc = opt.estimate_uncompressed_size(&spec);
                        KnownSize {
                            compressed_bytes: unc.bytes * cf,
                            uncompressed: unc,
                            spec,
                        }
                    })
                    .collect();
                let deduced = deduce_size(&opt, &target, &children);
                if let Ok(truth_cf) = true_compression_fraction(db, &target) {
                    let truth = opt.estimate_uncompressed_size(&target).bytes * truth_cf;
                    if truth > 0.0 {
                        ratios.push(deduced / truth);
                    }
                }
            }
        }
        let ns = stats_of(&per_kind[0].1);
        let ld = stats_of(&per_kind[1].1);
        fits[0].1.push((a as f64, ns.bias));
        fits[1].1.push((a as f64, ld.bias));
        fits[2].1.push((a as f64, ld.stddev));
        table.row(vec![
            a.to_string(),
            format!("{:+.4}", ns.bias),
            format!("{:.4}", ns.stddev),
            format!("{:+.4}", ld.bias),
            format!("{:.4}", ld.stddev),
        ]);
    }
    table.row(vec!["".into(); 5]);
    for (name, pts) in fits {
        let c = ErrorModel::fit_linear_coefficient(&pts);
        table.row(vec![
            "fit".into(),
            name,
            format!("{c:+.4} a"),
            "".into(),
            "".into(),
        ]);
    }
    table
}

/// The full Figure 9 / Table 2 sweep over TPC-H Z∈{0,1,3} and TPC-DS.
pub fn figure9_all(scale: f64) -> Vec<Table> {
    let fractions = [0.01, 0.025, 0.05, 0.10];
    let seeds = [1u64, 2, 3];
    let mut out = Vec::new();
    for (label, z) in [("TPC-H Z=0", 0.0), ("TPC-H Z=1", 1.0), ("TPC-H Z=3", 3.0)] {
        let db = cadb_datagen::TpchGen::with_skew(scale, z)
            .build()
            .expect("gen");
        let mut t = figure9_for_db(&db, &fractions, &seeds);
        t.title = format!("{} — {}", t.title, label);
        out.push(t);
    }
    // TPC-DS subset: index specs over store_sales.
    let ds = cadb_datagen::TpcdsGen::new(scale).build().expect("gen");
    let mut t = tpcds_figure9(&ds, &fractions, &seeds);
    t.title = format!("{} — TPC-DS", t.title);
    out.push(t);
    out
}

fn tpcds_figure9(db: &Database, fractions: &[f64], seeds: &[u64]) -> Table {
    let t_ss = db.table_id("store_sales").expect("tpcds db");
    let cols: Vec<ColumnId> = (0u16..9).map(ColumnId).collect();
    let mut ns_specs = Vec::new();
    let mut ld_specs = Vec::new();
    for &a in &cols {
        ns_specs.push(IndexSpec::secondary(t_ss, vec![a]).with_compression(CompressionKind::Row));
        ld_specs.push(IndexSpec::secondary(t_ss, vec![a]).with_compression(CompressionKind::Page));
        for &b in &cols {
            if a != b && (a.0 + b.0) % 3 == 0 {
                ns_specs.push(
                    IndexSpec::secondary(t_ss, vec![a, b]).with_compression(CompressionKind::Row),
                );
                ld_specs.push(
                    IndexSpec::secondary(t_ss, vec![a, b]).with_compression(CompressionKind::Page),
                );
            }
        }
    }
    let ns_truths = ground_truths(db, &ns_specs);
    let ld_truths = ground_truths(db, &ld_specs);
    let mut t = Table::new(
        "Figure 9: SampleCF error bias and stddev vs sampling fraction f",
        &["f", "NS-bias", "NS-stddev", "LD-bias", "LD-stddev"],
    );
    for &f in fractions {
        let mut ns_all = Vec::new();
        let mut ld_all = Vec::new();
        for &seed in seeds {
            ns_all.extend(samplecf_ratios_with_truths(
                db, &ns_specs, &ns_truths, f, seed,
            ));
            ld_all.extend(samplecf_ratios_with_truths(
                db, &ld_specs, &ld_truths, f, seed,
            ));
        }
        let ns = stats_of(&ns_all);
        let ld = stats_of(&ld_all);
        t.row(vec![
            format!("{:.1}%", f * 100.0),
            format!("{:+.4}", ns.bias),
            format!("{:.4}", ns.stddev),
            format!("{:+.4}", ld.bias),
            format!("{:.4}", ld.stddev),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samplecf_errors_shrink_with_f() {
        let db = cadb_datagen::TpchGen::new(0.05).build().unwrap();
        let specs = lineitem_index_specs(&db, &[CompressionKind::Row], 1);
        let small = stats_of(&samplecf_ratios(&db, &specs, 0.01, 1));
        let large = stats_of(&samplecf_ratios(&db, &specs, 0.20, 1));
        assert!(small.n > 5);
        // Larger samples → smaller spread (allowing some noise).
        assert!(
            large.stddev <= small.stddev + 0.02,
            "stddev {} -> {}",
            small.stddev,
            large.stddev
        );
    }

    #[test]
    fn figure10_table_has_three_a_rows() {
        let db = cadb_datagen::TpchGen::new(0.03).build().unwrap();
        let t = figure10_for_db(&db);
        // 3 data rows + blank + 3 fit rows.
        assert_eq!(t.rows.len(), 7);
        assert!(t.render().contains("a"));
    }
}
