//! The store's determinism and crash-recovery contract, pinned:
//!
//! * per-statement measured maintenance actuals are identical under
//!   `Serial`, `Auto` and `Threads(4)` execution (3 seeds);
//! * the committed state digest is interleaving-independent;
//! * group commit is a pure durability knob: WAL bytes, recovered state
//!   and per-statement actuals are bit-identical across batch sizes
//!   {1, 4, 16} and every `Parallelism` mode;
//! * WAL replay after a crash at **every sync point** — and at torn
//!   offsets strictly inside a frame, with injected duplicate frames and
//!   corrupted bytes — recovers exactly the last committed prefix;
//! * a checkpoint truncates the WAL to the marker and
//!   `recover_with_checkpoint` restarts from the artifact plus the tail
//!   alone, torn at every tail sync point;
//! * DELETEs are end-of-chain tombstones: invisible to newer snapshots,
//!   still visible to older ones, replayed by recovery, folded by
//!   checkpoints, and reflected in the MV overlay;
//! * snapshot page images come from the page cache (patched for
//!   append-only deltas, rebuilt when rows were rewritten or deleted) and
//!   agree with the row-visibility view;
//! * MV overlays agree with a brute-force recompute from visible rows;
//! * snapshots stay consistent under concurrent writers;
//! * **sharded serving** converges to the committed prefix when crashed at
//!   every per-shard WAL sync point (a torn shard tail ends the total
//!   order at the first commit referencing a lost frame) and at the
//!   global commit-order record (durable shard frames without an order
//!   record are uncommitted), with group commit preserving whole batches
//!   and random torn log sets pinned by a proptest;
//! * sharded snapshots stay consistent under N readers × M writers × K
//!   shards — no reader observes a partially applied cross-shard batch.

use cadb_common::{ColumnDef, ColumnId, DataType, Parallelism, Row, TableId, TableSchema, Value};
use cadb_compression::CompressionKind;
use cadb_engine::{
    BulkDelete, BulkInsert, BulkUpdate, Configuration, CostModel, Database, IndexSpec, JoinEdge,
    MvSpec, PhysicalStructure, SizeEstimate, Statement, Workload,
};
use cadb_exec::store::effects::CommitEffects;
use cadb_exec::{MaterializedConfig, Store, WriteActual};
use std::collections::HashMap;
use std::sync::Arc;

const FACT: TableId = TableId(0);
const DIM: TableId = TableId(1);
const N_FACT: i64 = 600;
const N_DIM: i64 = 20;

fn db() -> Database {
    let mut db = Database::new();
    let f = db
        .create_table(
            TableSchema::new(
                "f",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("fk", DataType::Int),
                    ColumnDef::new("val", DataType::Int),
                    ColumnDef::new("cat", DataType::Varchar { max_len: 8 }),
                ],
                vec![ColumnId(0)],
            )
            .unwrap(),
        )
        .unwrap();
    let d = db
        .create_table(
            TableSchema::new(
                "d",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("grp", DataType::Varchar { max_len: 8 }),
                ],
                vec![ColumnId(0)],
            )
            .unwrap(),
        )
        .unwrap();
    let fact_rows: Vec<Row> = (0..N_FACT)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % N_DIM),
                Value::Int(i * 3 % 97),
                Value::Str(format!("c{}", i % 4)),
            ])
        })
        .collect();
    db.insert_rows(f, fact_rows).unwrap();
    let dim_rows: Vec<Row> = (0..N_DIM)
        .map(|i| Row::new(vec![Value::Int(i), Value::Str(format!("g{}", i % 5))]))
        .collect();
    db.insert_rows(d, dim_rows).unwrap();
    db
}

fn est(rows: f64) -> SizeEstimate {
    SizeEstimate {
        bytes: rows * 40.0,
        pages: (rows / 100.0).max(1.0),
        rows,
        compression_fraction: 1.0,
    }
}

/// Clustered base on the fact table, a plain secondary, a partial
/// secondary, and an MV over f ⋈ d grouped by the dimension attribute.
fn config() -> Configuration {
    let clustered = IndexSpec {
        table: FACT,
        key_cols: vec![ColumnId(0)],
        include_cols: vec![],
        clustered: true,
        compression: CompressionKind::Page,
        partial_filter: None,
        mv: None,
    };
    let secondary = IndexSpec {
        table: FACT,
        key_cols: vec![ColumnId(1)],
        include_cols: vec![ColumnId(2)],
        clustered: false,
        compression: CompressionKind::Row,
        partial_filter: None,
        mv: None,
    };
    let partial = IndexSpec {
        table: FACT,
        key_cols: vec![ColumnId(2)],
        include_cols: vec![],
        clustered: false,
        compression: CompressionKind::None,
        partial_filter: Some(cadb_engine::Predicate {
            table: FACT,
            column: ColumnId(3),
            op: cadb_engine::PredOp::Eq,
            values: vec![Value::Str("c1".into())],
        }),
        mv: None,
    };
    let mv = IndexSpec {
        table: FACT,
        key_cols: vec![ColumnId(0)],
        include_cols: vec![ColumnId(1), ColumnId(2)],
        clustered: false,
        compression: CompressionKind::None,
        partial_filter: None,
        mv: Some(MvSpec {
            root: FACT,
            joins: vec![JoinEdge {
                left: (FACT, ColumnId(1)),
                right: (DIM, ColumnId(0)),
            }],
            group_by: vec![(DIM, ColumnId(1))],
            agg_columns: vec![(FACT, ColumnId(2))],
        }),
    };
    Configuration::new(vec![
        PhysicalStructure {
            spec: clustered,
            size: est(N_FACT as f64),
        },
        PhysicalStructure {
            spec: secondary,
            size: est(N_FACT as f64),
        },
        PhysicalStructure {
            spec: partial,
            size: est(N_FACT as f64 / 4.0),
        },
        PhysicalStructure {
            spec: mv,
            size: est(5.0),
        },
    ])
}

/// Inserts on both tables, updates on the fact table only — so the two
/// update statements can never race on the same row slot and the final
/// state is interleaving-independent.
fn workload() -> Workload {
    let mut w = Workload::default();
    w.push(
        Statement::Insert(BulkInsert {
            table: FACT,
            n_rows: 50,
        }),
        2.0,
    );
    w.push(
        Statement::Update(BulkUpdate {
            table: FACT,
            n_rows: 40,
            column: ColumnId(2),
        }),
        1.0,
    );
    w.push(
        Statement::Insert(BulkInsert {
            table: DIM,
            n_rows: 6,
        }),
        1.0,
    );
    w.push(
        Statement::Insert(BulkInsert {
            table: FACT,
            n_rows: 25,
        }),
        0.5,
    );
    w
}

fn assert_actuals_eq(a: &[WriteActual], b: &[WriteActual], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: actual counts");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.statement_index, y.statement_index, "{ctx}");
        assert_eq!(
            x.counters, y.counters,
            "{ctx}: counters of stmt {}",
            x.statement_index
        );
        assert_eq!(
            x.measured_cost.to_bits(),
            y.measured_cost.to_bits(),
            "{ctx}: measured cost of stmt {}",
            x.statement_index
        );
        assert_eq!(
            x.measured_mv_cost.to_bits(),
            y.measured_mv_cost.to_bits(),
            "{ctx}: mv cost of stmt {}",
            x.statement_index
        );
    }
}

#[test]
fn measured_actuals_identical_across_parallelism() {
    let db = db();
    let mat = MaterializedConfig::build(&db, &config()).unwrap();
    for seed in [11u64, 22, 33] {
        let mut per_mode: Vec<(Vec<WriteActual>, u64)> = Vec::new();
        for par in [
            Parallelism::Serial,
            Parallelism::Auto,
            Parallelism::Threads(4),
        ] {
            let store = Store::open(&db, &mat, CostModel::default());
            let mut acts = store.apply_workload(&workload(), seed, par).unwrap();
            acts.sort_by_key(|a| a.statement_index);
            per_mode.push((acts, store.state_digest().unwrap()));
        }
        let (serial_acts, serial_digest) = &per_mode[0];
        for (acts, digest) in &per_mode[1..] {
            assert_actuals_eq(serial_acts, acts, &format!("seed {seed}"));
            assert_eq!(digest, serial_digest, "seed {seed}: state digest");
        }
    }
}

#[test]
fn replay_reproduces_state_and_totals_bit_for_bit() {
    let db = db();
    let mat = MaterializedConfig::build(&db, &config()).unwrap();
    for seed in [11u64, 22, 33] {
        for par in [Parallelism::Serial, Parallelism::Auto] {
            let store = Store::open(&db, &mat, CostModel::default());
            store.apply_workload(&workload(), seed, par).unwrap();
            let (recovered, report) =
                Store::recover(&db, &mat, CostModel::default(), &store.wal_bytes()).unwrap();
            assert_eq!(report.truncated_bytes, 0);
            assert_eq!(report.duplicates_skipped, 0);
            assert_eq!(report.watermark, store.watermark());
            assert_eq!(
                recovered.state_digest().unwrap(),
                store.state_digest().unwrap(),
                "seed {seed} par {par:?}"
            );
            // Replay applies in LSN order = original commit order, so the
            // float totals accumulate in the same order: exact equality.
            let (t0, t1) = (store.totals(), recovered.totals());
            assert_eq!(t0.commits, t1.commits);
            assert_eq!(t0.counters, t1.counters);
            assert_eq!(t0.measured_cost.to_bits(), t1.measured_cost.to_bits());
            assert_eq!(t0.measured_mv_cost.to_bits(), t1.measured_mv_cost.to_bits());
        }
    }
}

/// Serial run, one commit at a time, recording the state digest after
/// each; then crash the WAL at every sync point, at torn offsets strictly
/// inside the tail frame, with a duplicated frame, and with a corrupted
/// byte — recovery must always land on the last fully committed prefix.
#[test]
fn crash_at_every_sync_point_recovers_last_committed_prefix() {
    let db = db();
    let mat = MaterializedConfig::build(&db, &config()).unwrap();
    let store = Store::open(&db, &mat, CostModel::default());

    let mut digests = vec![store.state_digest().unwrap()]; // after 0 commits
    let mut totals = vec![store.totals()];
    for (idx, (stmt, _)) in workload().statements.iter().enumerate() {
        let label = format!("write-{idx}");
        let eff = match stmt {
            Statement::Insert(i) => store.prepare_insert(i, 7, &label).unwrap(),
            Statement::Update(u) => store.prepare_update(u, 7, &label).unwrap(),
            Statement::Delete(d) => store.prepare_delete(d, 7, &label).unwrap(),
            Statement::Select(_) => continue,
        };
        store.commit(eff).unwrap();
        digests.push(store.state_digest().unwrap());
        totals.push(store.totals());
    }
    let wal = store.wal_bytes();
    let syncs = store.wal_sync_points();
    assert_eq!(syncs.len() + 1, digests.len());

    let recover_digest = |bytes: &[u8]| {
        let (rec, rep) = Store::recover(&db, &mat, CostModel::default(), bytes).unwrap();
        (rec.state_digest().unwrap(), rec.totals(), rep)
    };

    // Clean cut at every sync point: exactly k commits survive.
    for (k, &cut) in [0usize].iter().chain(syncs.iter()).enumerate() {
        let (digest, tot, rep) = recover_digest(&wal[..cut]);
        assert_eq!(digest, digests[k], "sync point {k}");
        assert_eq!(tot.commits, totals[k].commits);
        assert_eq!(
            tot.measured_cost.to_bits(),
            totals[k].measured_cost.to_bits()
        );
        assert_eq!(rep.truncated_bytes, 0);
    }

    // Torn cut at every byte offset strictly inside the *last* frame, and
    // a few offsets inside every earlier frame: the preceding prefix
    // survives, the torn tail is truncated.
    let mut prev = 0usize;
    for (k, &end) in syncs.iter().enumerate() {
        let cuts: Vec<usize> = if k + 1 == syncs.len() {
            (prev + 1..end).collect()
        } else {
            vec![prev + 1, (prev + end) / 2, end - 1]
        };
        for cut in cuts {
            let (digest, _, rep) = recover_digest(&wal[..cut]);
            assert_eq!(digest, digests[k], "torn cut at {cut} in frame {k}");
            assert_eq!(rep.truncated_bytes, cut - prev);
        }
        prev = end;
    }

    // Duplicate frame: replaying a twice-durable frame applies it once.
    let first_frame = &wal[..syncs[0]];
    let mut dup = first_frame.to_vec();
    dup.extend_from_slice(&wal);
    let (digest, tot, rep) = recover_digest(&dup);
    assert_eq!(digest, *digests.last().unwrap());
    assert_eq!(tot.commits, totals.last().unwrap().commits);
    assert_eq!(rep.duplicates_skipped, 1);

    // Corrupt one byte inside frame 2's payload: frames 0 and 1 survive.
    let mut corrupt = wal.clone();
    corrupt[syncs[1] + 20] ^= 0x10;
    let (digest, _, rep) = recover_digest(&corrupt);
    assert_eq!(digest, digests[2]);
    assert!(rep.truncated_bytes > 0);

    // Duplicate the first frame, then tear strictly inside the second:
    // the skipped duplicate's bytes must not inflate the torn-tail count.
    let frame1 = &wal[syncs[0]..syncs[1]];
    let cut = frame1.len() / 2;
    let mut dup_torn = wal[..syncs[0]].to_vec();
    dup_torn.extend_from_slice(&wal[..syncs[0]]);
    dup_torn.extend_from_slice(&frame1[..cut]);
    let (digest, _, rep) = recover_digest(&dup_torn);
    assert_eq!(digest, digests[1]);
    assert_eq!(rep.duplicates_skipped, 1);
    assert_eq!(rep.truncated_bytes, cut, "torn tail counted exactly once");
}

/// The post-checkpoint "tail" epoch: writes of all three kinds against the
/// folded artifact bases.
fn tail_workload() -> Workload {
    let mut w = Workload::default();
    w.push(
        Statement::Insert(BulkInsert {
            table: FACT,
            n_rows: 30,
        }),
        1.0,
    );
    w.push(
        Statement::Update(BulkUpdate {
            table: FACT,
            n_rows: 20,
            column: ColumnId(2),
        }),
        1.0,
    );
    w.push(
        Statement::Delete(BulkDelete {
            table: FACT,
            n_rows: 15,
        }),
        1.0,
    );
    w.push(
        Statement::Insert(BulkInsert {
            table: DIM,
            n_rows: 3,
        }),
        1.0,
    );
    w
}

/// A checkpoint folds the deltas into compressed structures, truncates the
/// WAL to the marker, and anchors recovery: `recover_with_checkpoint`
/// restarts from the artifact plus the post-checkpoint tail alone, and a
/// second checkpoint of the recovered store is bit-identical to the live
/// one's.
#[test]
fn checkpoint_truncates_wal_and_anchors_recovery() {
    let db = db();
    let mat = MaterializedConfig::build(&db, &config()).unwrap();
    let store = Store::open(&db, &mat, CostModel::default());
    store
        .apply_workload(&workload(), 5, Parallelism::Serial)
        .unwrap();
    let pre_checkpoint_wal = store.wal_bytes().len();
    let pre_checkpoint_digest = store.state_digest().unwrap();

    let chk = store.checkpoint().unwrap();
    // FACT saw updates → leaf rebuild; DIM is append-only → page patches.
    assert_eq!(chk.rebuilt_tables, 1);
    assert_eq!(chk.patched_tables, 1);
    // The whole pre-checkpoint log is gone; only the marker survives.
    assert_eq!(chk.truncated_wal_bytes, pre_checkpoint_wal);
    let replayed = cadb_storage::wal::replay(&store.wal_bytes());
    assert_eq!(replayed.frames.len(), 1);
    assert_eq!(
        replayed.frames[0].frame_type,
        cadb_storage::FrameType::Checkpoint
    );
    // The epoch switch preserves the committed state bit for bit…
    assert_eq!(store.state_digest().unwrap(), pre_checkpoint_digest);
    // …and the folded structure holds exactly the visible rows.
    let folded_fact = chk.tables.get(&FACT).unwrap();
    let snap = store.snapshot();
    assert_eq!(folded_fact.n_rows(), snap.n_rows(FACT).unwrap());
    let mut want = snap.table_rows(FACT).unwrap();
    let mut got = folded_fact.scan().unwrap();
    want.sort();
    got.sort();
    assert_eq!(want, got);

    // Write a post-checkpoint tail, then recover from artifact + tail.
    store
        .apply_workload(&tail_workload(), 6, Parallelism::Serial)
        .unwrap();
    let (recovered, report) =
        Store::recover_with_checkpoint(&db, &mat, CostModel::default(), &chk, &store.wal_bytes())
            .unwrap();
    assert_eq!(report.checkpoints_seen, 1);
    // Only the tail frames are replayed — recovery is O(tail).
    assert_eq!(report.frames_applied, tail_workload().statements.len());
    assert_eq!(report.truncated_bytes, 0);
    assert_eq!(report.watermark, store.watermark());
    assert_eq!(
        recovered.state_digest().unwrap(),
        store.state_digest().unwrap()
    );
    let (t0, t1) = (store.totals(), recovered.totals());
    assert_eq!(t0.commits, t1.commits);
    assert_eq!(t0.counters, t1.counters);
    assert_eq!(t0.measured_cost.to_bits(), t1.measured_cost.to_bits());
    assert_eq!(t0.measured_mv_cost.to_bits(), t1.measured_mv_cost.to_bits());

    // A second checkpoint of the recovered store is bit-identical.
    let chk_live = store.checkpoint().unwrap();
    let chk_rec = recovered.checkpoint().unwrap();
    assert_eq!(
        chk_live.digest(),
        chk_rec.digest(),
        "second checkpoint must be bit-identical"
    );
}

/// Tear the post-checkpoint WAL tail at every sync point, and at torn
/// offsets strictly inside tail frames (including inside the marker
/// itself): `recover_with_checkpoint` always lands on the last fully
/// committed tail prefix on top of the artifact.
#[test]
fn crash_in_post_checkpoint_tail_recovers_from_artifact_plus_prefix() {
    let db = db();
    let mat = MaterializedConfig::build(&db, &config()).unwrap();
    let store = Store::open(&db, &mat, CostModel::default());
    store
        .apply_workload(&workload(), 5, Parallelism::Serial)
        .unwrap();
    let chk = store.checkpoint().unwrap();

    // Commit the tail one statement at a time, recording digests.
    let mut digests = vec![store.state_digest().unwrap()]; // after 0 tail commits
    for (idx, (stmt, _)) in tail_workload().statements.iter().enumerate() {
        let label = format!("write-{idx}");
        let eff = match stmt {
            Statement::Insert(i) => store.prepare_insert(i, 6, &label).unwrap(),
            Statement::Update(u) => store.prepare_update(u, 6, &label).unwrap(),
            Statement::Delete(d) => store.prepare_delete(d, 6, &label).unwrap(),
            Statement::Select(_) => continue,
        };
        store.commit(eff).unwrap();
        digests.push(store.state_digest().unwrap());
    }
    let wal = store.wal_bytes();
    let syncs = store.wal_sync_points();
    // syncs[0] ends the checkpoint marker; syncs[1..] end the tail frames.
    assert_eq!(syncs.len(), digests.len());

    let recover = |bytes: &[u8]| {
        Store::recover_with_checkpoint(&db, &mat, CostModel::default(), &chk, bytes).unwrap()
    };

    // Clean cut at every sync point: artifact + k tail commits survive.
    for (i, &cut) in syncs.iter().enumerate() {
        let (rec, rep) = recover(&wal[..cut]);
        assert_eq!(rec.state_digest().unwrap(), digests[i], "sync point {i}");
        assert_eq!(rep.frames_applied, i);
        assert_eq!(rep.checkpoints_seen, 1);
        assert_eq!(rep.truncated_bytes, 0);
    }

    // Torn strictly inside the marker: the artifact alone survives.
    let (rec, rep) = recover(&wal[..syncs[0] / 2]);
    assert_eq!(rec.state_digest().unwrap(), digests[0]);
    assert_eq!(rep.checkpoints_seen, 0);
    assert_eq!(rep.truncated_bytes, syncs[0] / 2);
    assert_eq!(rec.watermark(), chk.lsn);

    // Torn strictly inside every tail frame: the preceding prefix
    // survives, the torn bytes are counted exactly once.
    let mut prev = syncs[0];
    for (k, &end) in syncs[1..].iter().enumerate() {
        for cut in [prev + 1, (prev + end) / 2, end - 1] {
            let (rec, rep) = recover(&wal[..cut]);
            assert_eq!(
                rec.state_digest().unwrap(),
                digests[k],
                "torn cut at {cut} in tail frame {k}"
            );
            assert_eq!(rep.truncated_bytes, cut - prev);
        }
        prev = end;
    }
}

/// Assert the store's MV overlay equals a brute-force group-delta
/// recompute from the visible rows — an independent derivation that never
/// touches the maintenance code path. Valid for workloads that touch each
/// base slot at most once (the store's logged `old_row` is always the
/// immutable-base version).
fn assert_mv_overlay_matches_brute_force(db: &Database, store: &Store<'_>) {
    let mv_pos = store
        .specs()
        .iter()
        .position(|s| s.mv.is_some())
        .expect("config has an MV");

    // Brute force: contribution of a fact row = (group via dim probe, val).
    let dim_rows = db.table(DIM).rows();
    let grp_of_fk: HashMap<Value, Value> = dim_rows
        .iter()
        .map(|r| (r.values[0].clone(), r.values[1].clone()))
        .collect();
    let contributions = |rows: &[Row]| -> HashMap<Vec<Value>, (i64, i64)> {
        let mut m: HashMap<Vec<Value>, (i64, i64)> = HashMap::new();
        for r in rows {
            let Some(g) = grp_of_fk.get(&r.values[1]) else {
                continue;
            };
            let e = m.entry(vec![g.clone()]).or_default();
            e.0 += 1;
            e.1 += r.values[2].as_i64().unwrap_or(0);
        }
        m
    };
    let base = contributions(&store.base_rows(FACT).unwrap());
    let visible = contributions(&store.snapshot().table_rows(FACT).unwrap());

    let overlay = store.mv_overlay(mv_pos);
    let mut keys: Vec<Vec<Value>> = base.keys().chain(visible.keys()).cloned().collect();
    keys.extend(overlay.keys().cloned());
    keys.sort_by(|a, b| Row::new(a.clone()).cmp(&Row::new(b.clone())));
    keys.dedup();
    for key in keys {
        let b = base.get(&key).copied().unwrap_or((0, 0));
        let v = visible.get(&key).copied().unwrap_or((0, 0));
        let want = (v.0 - b.0, v.1 - b.1);
        let got = overlay
            .get(&key)
            .map(|g| (g.count, g.sums[0]))
            .unwrap_or((0, 0));
        assert_eq!(got, want, "group {key:?}");
    }
}

#[test]
fn mv_overlay_matches_brute_force_recompute() {
    let db = db();
    let mat = MaterializedConfig::build(&db, &config()).unwrap();
    let store = Store::open(&db, &mat, CostModel::default());
    store
        .apply_workload(&workload(), 9, Parallelism::Serial)
        .unwrap();
    assert_mv_overlay_matches_brute_force(&db, &store);
}

/// Group commit is a pure durability knob: WAL bytes, recovered state and
/// per-statement actuals (LSNs included) are bit-identical across batch
/// sizes {1, 4, 16} and every `Parallelism` mode — only the sync-point
/// count (where a crash can land) changes.
#[test]
fn group_commit_equivalence_across_batch_sizes_and_modes() {
    let db = db();
    let mat = MaterializedConfig::build(&db, &config()).unwrap();
    let mut w = workload();
    w.push(
        Statement::Delete(BulkDelete {
            table: FACT,
            n_rows: 30,
        }),
        1.0,
    );
    w.push(
        Statement::Insert(BulkInsert {
            table: FACT,
            n_rows: 10,
        }),
        1.0,
    );
    let n_writes = w.statements.len();

    let mut reference: Option<(u64, u64, Vec<WriteActual>)> = None;
    for batch in [1usize, 4, 16] {
        for par in [
            Parallelism::Serial,
            Parallelism::Auto,
            Parallelism::Threads(4),
        ] {
            let ctx = format!("batch {batch} par {par:?}");
            let store = Store::open(&db, &mat, CostModel::default());
            let acts = store.apply_workload_batched(&w, 13, par, batch).unwrap();
            // Batching coalesces durability: ⌈n/batch⌉ sync points.
            assert_eq!(
                store.wal_sync_points().len(),
                n_writes.div_ceil(batch),
                "{ctx}: sync points"
            );
            let wal_digest = store.wal_frame_digest();
            let state = store.state_digest().unwrap();
            // The full log replays to the same state under plain recovery.
            let (rec, rep) =
                Store::recover(&db, &mat, CostModel::default(), &store.wal_bytes()).unwrap();
            assert_eq!(rep.frames_applied, n_writes, "{ctx}");
            assert_eq!(rec.state_digest().unwrap(), state, "{ctx}");
            match &reference {
                None => reference = Some((wal_digest, state, acts)),
                Some((wd, sd, ra)) => {
                    assert_eq!(wal_digest, *wd, "{ctx}: WAL bytes diverged");
                    assert_eq!(state, *sd, "{ctx}: state digest diverged");
                    assert_actuals_eq(ra, &acts, &ctx);
                    for (x, y) in ra.iter().zip(&acts) {
                        assert_eq!(x.lsn, y.lsn, "{ctx}: LSN of stmt {}", x.statement_index);
                    }
                }
            }
        }
    }
}

/// DELETE is an end-of-chain tombstone: older snapshots keep seeing the
/// rows, newer ones don't; maintenance counters charge the secondary
/// structures; the MV overlay subtracts the deleted contributions; and
/// replaying the log reproduces the post-delete state bit for bit.
#[test]
fn deletes_tombstone_without_disturbing_older_snapshots() {
    let db = db();
    let mat = MaterializedConfig::build(&db, &config()).unwrap();
    let store = Store::open(&db, &mat, CostModel::default());

    let pre = store.snapshot();
    let n0 = pre.n_rows(FACT).unwrap();
    let before = pre.table_rows(FACT).unwrap();

    let eff = store
        .prepare_delete(
            &BulkDelete {
                table: FACT,
                n_rows: 30,
            },
            3,
            "del-0",
        )
        .unwrap();
    assert_eq!(eff.deleted.len(), 30);
    let deleted_rows: Vec<Row> = eff.deleted.iter().map(|t| t.old_row.clone()).collect();
    let receipt = store.commit(eff).unwrap();
    assert_eq!(receipt.counters.rows_deleted, 30);
    assert!(
        receipt.counters.index_rows_touched >= 30,
        "secondary index maintenance must be charged"
    );
    assert!(receipt.measured_cost > 0.0);

    // The old snapshot is undisturbed; the new one shrank by exactly the
    // tombstoned rows (as a multiset).
    let post = store.snapshot();
    assert_eq!(pre.n_rows(FACT).unwrap(), n0);
    assert_eq!(pre.table_rows(FACT).unwrap(), before);
    assert_eq!(post.n_rows(FACT).unwrap(), n0 - 30);
    let mut after_plus_deleted = post.table_rows(FACT).unwrap();
    after_plus_deleted.extend(deleted_rows);
    let mut before_sorted = before.clone();
    before_sorted.sort();
    after_plus_deleted.sort();
    assert_eq!(after_plus_deleted, before_sorted);

    // The MV overlay subtracted the deleted contributions.
    assert_mv_overlay_matches_brute_force(&db, &store);

    // Recovery replays the tombstones.
    let (recovered, rep) =
        Store::recover(&db, &mat, CostModel::default(), &store.wal_bytes()).unwrap();
    assert_eq!(rep.frames_applied, 1);
    assert_eq!(recovered.snapshot().n_rows(FACT).unwrap(), n0 - 30);
    assert_eq!(
        recovered.state_digest().unwrap(),
        store.state_digest().unwrap()
    );
    assert_eq!(
        recovered.totals().counters.rows_deleted,
        store.totals().counters.rows_deleted
    );
}

/// The snapshot page cache serves the base structure for unmodified
/// tables, an O(delta) patched image for append-only deltas, a rebuilt
/// image once rows were rewritten or deleted — shared (same `Arc`) by
/// snapshots between the same two modifications — and the images always
/// agree with the row-visibility view.
#[test]
fn snapshot_page_cache_serves_patched_and_rebuilt_images() {
    let db = db();
    let mat = MaterializedConfig::build(&db, &config()).unwrap();
    let store = Store::open(&db, &mat, CostModel::default());

    // Unmodified table: the base structure is the image (a cache hit, no
    // fold).
    let snap0 = store.snapshot();
    let p0 = snap0.pages(FACT).unwrap();
    assert_eq!(p0.n_rows(), N_FACT as usize);
    let s = store.page_cache_stats();
    assert_eq!((s.hits, s.misses), (1, 0));

    // Append-only delta: the image is the base patched with the appended
    // rows — each routed into the leaf its key belongs to.
    let ins = store
        .prepare_insert(
            &BulkInsert {
                table: FACT,
                n_rows: 20,
            },
            17,
            "cache-ins",
        )
        .unwrap();
    let appended_ids: Vec<Value> = ins.appended.iter().map(|r| r.values[0].clone()).collect();
    store.commit(ins).unwrap();
    let snap1 = store.snapshot();
    let p1 = snap1.pages(FACT).unwrap();
    assert_eq!(p1.n_rows(), N_FACT as usize + 20);
    let s = store.page_cache_stats();
    assert_eq!((s.misses, s.patched, s.rebuilt), (1, 1, 0));
    let mut want = snap1.table_rows(FACT).unwrap();
    let mut got = p1.scan().unwrap();
    want.sort();
    got.sort();
    assert_eq!(got, want, "patched image holds exactly the visible rows");

    // A second snapshot at the same visibility shares the image.
    let p1b = store.snapshot().pages(FACT).unwrap();
    assert!(Arc::ptr_eq(&p1, &p1b), "same image, no re-fold");
    // The older snapshot still reads the unpatched base.
    assert_eq!(snap0.pages(FACT).unwrap().n_rows(), N_FACT as usize);

    // An update forces a rebuilt image (base key order), and seeking it
    // finds the new version through the B+Tree descent.
    let upd = BulkUpdate {
        table: FACT,
        n_rows: 10,
        column: ColumnId(2),
    };
    let eff = store.prepare_update(&upd, 17, "cache-upd").unwrap();
    let rewritten = eff.rewritten.clone();
    store.commit(eff).unwrap();
    let snap2 = store.snapshot();
    let p2 = snap2.pages(FACT).unwrap();
    assert_eq!(store.page_cache_stats().rebuilt, 1);
    assert_eq!(p2.n_rows(), N_FACT as usize + 20);
    let mut want = snap2.table_rows(FACT).unwrap();
    let mut got = p2.scan().unwrap();
    want.sort();
    got.sort();
    assert_eq!(want, got, "rebuilt image holds exactly the visible rows");
    // Seek on a key the inserted clones didn't duplicate, so the hit set
    // is exactly the one version chain.
    let rw = rewritten
        .iter()
        .find(|rw| !appended_ids.contains(&rw.old_row.values[0]))
        .expect("an updated slot no insert cloned");
    let hits = snap2.seek(FACT, &[rw.new_row.values[0].clone()]).unwrap();
    assert!(
        hits.contains(&rw.new_row),
        "seek over the rebuilt image must find the updated version"
    );
    assert!(
        !hits.contains(&rw.old_row),
        "the superseded version must be invisible to the seek"
    );
}

/// N reader × M writer threads: every snapshot a reader takes must be
/// consistent (appended-row visibility matches what the WAL says for its
/// LSN) and row counts must be monotone in the LSN.
#[test]
fn snapshots_stay_consistent_under_concurrent_writers() {
    let db = db();
    let mat = MaterializedConfig::build(&db, &config()).unwrap();
    let store = Store::open(&db, &mat, CostModel::default());
    let n_writers = 3usize;
    let commits_per_writer = 8usize;

    std::thread::scope(|scope| {
        for w in 0..n_writers {
            let store = &store;
            scope.spawn(move || {
                for c in 0..commits_per_writer {
                    let eff = store
                        .prepare_insert(
                            &BulkInsert {
                                table: FACT,
                                n_rows: 10,
                            },
                            99,
                            &format!("w{w}-c{c}"),
                        )
                        .unwrap();
                    store.commit(eff).unwrap();
                }
            });
        }
        for _ in 0..2 {
            let store = &store;
            scope.spawn(move || {
                let mut last_n = 0usize;
                let mut last_lsn = 0u64;
                loop {
                    let snap = store.snapshot();
                    let n = snap.n_rows(FACT).unwrap();
                    assert!(store.snapshot_consistent(snap.lsn()).unwrap());
                    assert!(
                        snap.lsn() < last_lsn || n >= last_n,
                        "visible rows regressed: {n} < {last_n}"
                    );
                    if snap.lsn() >= last_lsn {
                        last_n = n;
                        last_lsn = snap.lsn();
                    }
                    if store.totals().commits as usize == n_writers * commits_per_writer {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }
    });

    let expected = N_FACT as usize + n_writers * commits_per_writer * 10;
    assert_eq!(store.snapshot().n_rows(FACT).unwrap(), expected);
    // The full concurrent log replays to the same state.
    let (recovered, _) =
        Store::recover(&db, &mat, CostModel::default(), &store.wal_bytes()).unwrap();
    assert_eq!(
        recovered.state_digest().unwrap(),
        store.state_digest().unwrap()
    );
}

/// The WAL payload codec is exercised end-to-end by recovery; pin the
/// decode error path for malformed commit payloads too.
#[test]
fn malformed_commit_payload_is_an_error_not_a_panic() {
    assert!(CommitEffects::decode(&[1, 2, 3]).is_err());
    assert!(CommitEffects::decode(&[]).is_err());
}

// ===================== sharded serving crash matrix =====================

use cadb_exec::ShardedStore;
use cadb_shard::ShardSpec;
use cadb_storage::wal::{replay as wal_replay, CommitOrderRecord, FrameType};

/// Oracle: the monolithic state digest after each committed write prefix
/// (`digests[k]` = digest after the first `k` writes). The sharded store
/// is bit-identical to the monolithic one, so these are exactly the
/// states a sharded crash may legally recover to.
fn prefix_digests(db: &Database, mat: &MaterializedConfig, w: &Workload, seed: u64) -> Vec<u64> {
    let store = Store::open(db, mat, CostModel::default());
    let mut digests = vec![store.state_digest().unwrap()];
    for (idx, (stmt, _)) in w.statements.iter().enumerate() {
        let label = format!("write-{idx}");
        let eff = match stmt {
            Statement::Insert(i) => store.prepare_insert(i, seed, &label).unwrap(),
            Statement::Update(u) => store.prepare_update(u, seed, &label).unwrap(),
            Statement::Delete(d) => store.prepare_delete(d, seed, &label).unwrap(),
            Statement::Select(_) => continue,
        };
        store.commit(eff).unwrap();
        digests.push(store.state_digest().unwrap());
    }
    digests
}

/// How many leading order records are fully durable in a (possibly torn)
/// log set: the committed prefix ends at the first record referencing a
/// shard frame that did not survive.
fn durable_prefix(order_bytes: &[u8], shard_bytes: &[Vec<u8>]) -> usize {
    let shard_lsns: Vec<std::collections::HashSet<u64>> = shard_bytes
        .iter()
        .map(|b| {
            wal_replay(b)
                .frames
                .iter()
                .filter(|f| f.frame_type == FrameType::Commit)
                .map(|f| f.lsn)
                .collect()
        })
        .collect();
    let mut n = 0;
    for f in &wal_replay(order_bytes).frames {
        if f.frame_type != FrameType::Commit {
            continue;
        }
        let rec = CommitOrderRecord::decode(&f.payload).unwrap();
        if rec
            .entries
            .iter()
            .all(|(s, l)| shard_lsns[*s as usize].contains(l))
        {
            n += 1;
        } else {
            break;
        }
    }
    n
}

/// Crash at **every per-shard WAL sync point** (clean and torn cuts) with
/// the order log intact, and at **every order-log sync point** with the
/// shard logs intact: recovery is byte-identical to the committed prefix
/// the surviving log set proves, with per-shard `truncated_bytes` /
/// `duplicates_skipped` accounting exact.
#[test]
fn sharded_crash_at_every_sync_point_recovers_committed_prefix() {
    let db = db();
    let mat = MaterializedConfig::build(&db, &config()).unwrap();
    let w = workload();
    let digests = prefix_digests(&db, &mat, &w, 7);

    for spec in [ShardSpec::hash(3), ShardSpec::range(3)] {
        let store = ShardedStore::open(&db, &mat, CostModel::default(), spec).unwrap();
        store.apply_workload(&w, 7, Parallelism::Serial).unwrap();
        let order = store.order_bytes();
        let full = store.all_shard_wal_bytes();
        let n_commits = durable_prefix(&order, &full);
        assert_eq!(n_commits + 1, digests.len(), "{spec:?}: clean log set");

        // Tear each shard's tail: clean cut at every sync point plus torn
        // offsets strictly inside frames.
        for s in 0..3usize {
            let syncs = store.shard_sync_points(s);
            let mut cuts: Vec<usize> = vec![0];
            cuts.extend(syncs.iter().copied());
            let mut prev = 0usize;
            for &end in &syncs {
                if end > prev + 2 {
                    cuts.push(prev + 1);
                    cuts.push((prev + end) / 2);
                }
                prev = end;
            }
            for cut in cuts {
                let mut bytes = full.clone();
                bytes[s].truncate(cut);
                let j = durable_prefix(&order, &bytes);
                let (rec, rep) =
                    ShardedStore::recover(&db, &mat, CostModel::default(), spec, &order, &bytes)
                        .unwrap();
                let ctx = format!("{spec:?}: shard {s} cut at {cut}");
                assert_eq!(rec.state_digest().unwrap(), digests[j], "{ctx}");
                assert_eq!(rep.order.frames_applied, j, "{ctx}");
                assert_eq!(rep.commits_discarded, n_commits - j, "{ctx}");
                assert_eq!(rep.watermark, j as u64, "{ctx}");
                let base = syncs
                    .iter()
                    .copied()
                    .filter(|&x| x <= cut)
                    .max()
                    .unwrap_or(0);
                assert_eq!(rep.per_shard[s].truncated_bytes, cut - base, "{ctx}");
                for (o, r) in rep.per_shard.iter().enumerate() {
                    assert_eq!(r.duplicates_skipped, 0, "{ctx}: shard {o}");
                    if o != s {
                        assert_eq!(r.truncated_bytes, 0, "{ctx}: shard {o}");
                    }
                }
            }
        }

        // Tear the order log: the order record is the commit point, so
        // exactly k commits survive a cut at sync point k even though
        // every shard frame is durable — and nothing is "discarded",
        // the lost commits never reached the log.
        let osyncs = store.order_sync_points();
        assert_eq!(
            osyncs.len(),
            n_commits,
            "{spec:?}: one order sync per commit"
        );
        for (k, &cut) in [0usize].iter().chain(osyncs.iter()).enumerate() {
            let (rec, rep) =
                ShardedStore::recover(&db, &mat, CostModel::default(), spec, &order[..cut], &full)
                    .unwrap();
            let ctx = format!("{spec:?}: order cut at sync {k}");
            assert_eq!(rec.state_digest().unwrap(), digests[k], "{ctx}");
            assert_eq!(rep.order.frames_applied, k, "{ctx}");
            assert_eq!(rep.commits_discarded, 0, "{ctx}");
            assert_eq!(rep.order.truncated_bytes, 0, "{ctx}");
            for r in &rep.per_shard {
                assert_eq!(r.truncated_bytes, 0, "{ctx}");
            }
        }
        // Torn order tail inside the last record: the preceding prefix
        // survives and the torn bytes are counted.
        let last = *osyncs.last().unwrap();
        let prev = osyncs[osyncs.len() - 2];
        for cut in [prev + 1, (prev + last) / 2, last - 1] {
            let (rec, rep) =
                ShardedStore::recover(&db, &mat, CostModel::default(), spec, &order[..cut], &full)
                    .unwrap();
            assert_eq!(
                rec.state_digest().unwrap(),
                digests[n_commits - 1],
                "{spec:?}: torn order tail at {cut}"
            );
            assert_eq!(rep.order.truncated_bytes, cut - prev);
        }
    }
}

/// Group commit changes durability granularity only: with batches of 2
/// and 4, an order-log crash at a sync point preserves whole batches —
/// never a partial one — and the recovered state matches the monolithic
/// prefix digest at the batch boundary.
#[test]
fn sharded_group_commit_crash_preserves_whole_batches() {
    let db = db();
    let mat = MaterializedConfig::build(&db, &config()).unwrap();
    let w = workload();
    let digests = prefix_digests(&db, &mat, &w, 7);
    let n_writes = digests.len() - 1;

    for spec in [ShardSpec::hash(3), ShardSpec::range(2)] {
        for batch in [2usize, 4] {
            let store = ShardedStore::open(&db, &mat, CostModel::default(), spec).unwrap();
            store
                .apply_workload_batched(&w, 7, Parallelism::Auto, batch)
                .unwrap();
            let order = store.order_bytes();
            let full = store.all_shard_wal_bytes();
            let osyncs = store.order_sync_points();
            assert_eq!(
                osyncs.len(),
                n_writes.div_ceil(batch),
                "{spec:?} batch {batch}"
            );
            for (k, &cut) in [0usize].iter().chain(osyncs.iter()).enumerate() {
                let survived = (k * batch).min(n_writes);
                let (rec, rep) = ShardedStore::recover(
                    &db,
                    &mat,
                    CostModel::default(),
                    spec,
                    &order[..cut],
                    &full,
                )
                .unwrap();
                assert_eq!(
                    rec.state_digest().unwrap(),
                    digests[survived],
                    "{spec:?} batch {batch}: cut after batch {k}"
                );
                assert_eq!(rep.order.frames_applied, survived);
            }
            // A shard-tail crash at a batch sync point likewise discards
            // from the first commit of the lost batch on.
            for s in 0..spec.shards {
                for &cut in store.shard_sync_points(s).iter() {
                    let mut bytes = full.clone();
                    bytes[s].truncate(cut);
                    let j = durable_prefix(&order, &bytes);
                    let (rec, _) = ShardedStore::recover(
                        &db,
                        &mat,
                        CostModel::default(),
                        spec,
                        &order,
                        &bytes,
                    )
                    .unwrap();
                    assert_eq!(
                        rec.state_digest().unwrap(),
                        digests[j],
                        "{spec:?} batch {batch}: shard {s} cut {cut}"
                    );
                }
            }
        }
    }
}

mod sharded_crash_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Any torn log set — a random byte cut in a random member of the
        /// log set, under a random shard layout and batch size — recovers
        /// exactly the committed prefix the surviving bytes prove.
        #[test]
        fn random_torn_log_set_recovers_a_committed_prefix(
            shards in 1usize..5,
            hash in any::<bool>(),
            batch in 1usize..4,
            victim in 0usize..6,
            frac in 0.0f64..1.0,
        ) {
            let db = db();
            let mat = MaterializedConfig::build(&db, &config()).unwrap();
            let w = workload();
            let digests = prefix_digests(&db, &mat, &w, 7);
            let spec = if hash { ShardSpec::hash(shards) } else { ShardSpec::range(shards) };
            let store = ShardedStore::open(&db, &mat, CostModel::default(), spec).unwrap();
            store.apply_workload_batched(&w, 7, Parallelism::Serial, batch).unwrap();
            let mut order = store.order_bytes();
            let mut bytes = store.all_shard_wal_bytes();
            // Cut either the order log or one shard's log at a random
            // byte offset.
            if victim % (shards + 1) == shards {
                let cut = (order.len() as f64 * frac) as usize;
                order.truncate(cut);
            } else {
                let s = victim % (shards + 1);
                let cut = (bytes[s].len() as f64 * frac) as usize;
                bytes[s].truncate(cut);
            }
            let j = durable_prefix(&order, &bytes);
            let (rec, rep) = ShardedStore::recover(
                &db, &mat, CostModel::default(), spec, &order, &bytes,
            ).unwrap();
            prop_assert_eq!(rec.state_digest().unwrap(), digests[j]);
            prop_assert_eq!(rep.watermark, j as u64);
            // Recovery rebuilt exactly the committed prefix: recovering
            // the recovered store's own log set is a fixed point.
            let (rec2, rep2) = ShardedStore::recover(
                &db, &mat, CostModel::default(), spec,
                &rec.order_bytes(), &rec.all_shard_wal_bytes(),
            ).unwrap();
            prop_assert_eq!(rec2.state_digest().unwrap(), digests[j]);
            prop_assert_eq!(rep2.commits_discarded, 0);
            prop_assert_eq!(rec2.wal_frame_digest(), rec.wal_frame_digest());
        }
    }
}

/// N readers × M writers × K shards: every snapshot a reader takes must
/// be internally consistent against the sharded log set — no reader ever
/// observes a partially applied cross-shard batch — and the full
/// concurrent log set replays to the live state.
#[test]
fn sharded_snapshots_stay_consistent_under_concurrent_writers() {
    let db = db();
    let mat = MaterializedConfig::build(&db, &config()).unwrap();
    let n_writers = 3usize;
    let commits_per_writer = 6usize;

    for spec in [ShardSpec::hash(4), ShardSpec::range(4)] {
        let store = ShardedStore::open(&db, &mat, CostModel::default(), spec).unwrap();
        std::thread::scope(|scope| {
            for wr in 0..n_writers {
                let store = &store;
                scope.spawn(move || {
                    for c in 0..commits_per_writer {
                        let eff = store
                            .prepare_insert(
                                &BulkInsert {
                                    table: FACT,
                                    n_rows: 10,
                                },
                                99,
                                &format!("w{wr}-c{c}"),
                            )
                            .unwrap();
                        store.commit(eff).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let store = &store;
                scope.spawn(move || {
                    let mut last_n = 0usize;
                    let mut last_lsn = 0u64;
                    loop {
                        let snap = store.snapshot();
                        let n = snap.n_rows(FACT).unwrap();
                        assert!(store.snapshot_consistent(snap.lsn()).unwrap());
                        assert!(
                            snap.lsn() < last_lsn || n >= last_n,
                            "visible rows regressed: {n} < {last_n}"
                        );
                        if snap.lsn() >= last_lsn {
                            last_n = n;
                            last_lsn = snap.lsn();
                        }
                        if store.totals().commits as usize == n_writers * commits_per_writer {
                            break;
                        }
                        std::thread::yield_now();
                    }
                });
            }
        });

        let expected = N_FACT as usize + n_writers * commits_per_writer * 10;
        assert_eq!(store.snapshot().n_rows(FACT).unwrap(), expected);
        let (recovered, rep) = ShardedStore::recover(
            &db,
            &mat,
            CostModel::default(),
            spec,
            &store.order_bytes(),
            &store.all_shard_wal_bytes(),
        )
        .unwrap();
        assert_eq!(rep.commits_discarded, 0, "{spec:?}");
        assert_eq!(
            recovered.state_digest().unwrap(),
            store.state_digest().unwrap(),
            "{spec:?}"
        );
    }
}
